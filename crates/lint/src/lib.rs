//! `gsi-lint`: project-native static analysis for the GSI workspace.
//!
//! A rustc-`tidy`-style pass — hand-rolled line/token scanning, zero
//! dependencies — that mechanically enforces the invariants the fuzz
//! gates only sample:
//!
//! 1. **panic-freedom** — panic-capable calls in serving-path crates are
//!    ratcheted against [`lint-baseline.toml`](baseline::Baseline).
//! 2. **charge-discipline** — device-ledger mutation in the join-strategy
//!    kernels only inside named `charge_*` helpers.
//! 3. **trace-gating** — no ungated `Instant::now` in core hot paths.
//! 4. **metric-grammar** — metric names validated at lint time, not at
//!    scrape time.
//! 5. **lock-hygiene** — nested `.lock()` acquisitions follow the
//!    documented lock-order map.
//!
//! Any finding can be suppressed in place with
//! `// gsi-lint: allow(<check>, reason = "...")` on the offending line or
//! the line above; the reason is mandatory.

pub mod baseline;
pub mod checks;
pub mod scan;

pub use baseline::Baseline;
pub use checks::{check_file, metric_name_ok, Check, FileReport, Finding, LOCK_ORDER};
pub use scan::SourceFile;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Result of linting a set of files against a baseline.
#[derive(Debug, Default)]
pub struct Report {
    /// Hard errors (every check except the ratcheted panic-freedom).
    pub errors: Vec<Finding>,
    /// Panic sites surfaced because their file regressed the ratchet.
    /// Kept apart from `errors` so `--write-baseline` can re-pin them
    /// without being failed by the very counts it is recording.
    pub ratchet_errors: Vec<Finding>,
    /// Extra ratchet diagnostics (not tied to one line).
    pub ratchet_notes: Vec<String>,
    /// Current panic-site counts per file (for `--write-baseline`).
    pub panic_counts: BTreeMap<String, usize>,
    /// Total files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the lint run passes.
    pub fn clean(&self) -> bool {
        self.errors.is_empty() && self.ratchet_errors.is_empty() && self.ratchet_notes.is_empty()
    }
}

/// Lint `(path, content)` pairs against `baseline`. Paths are the
/// workspace-relative strings used both for check applicability and in
/// findings.
pub fn lint_files<'a>(
    files: impl IntoIterator<Item = (&'a str, &'a str)>,
    baseline: &Baseline,
) -> Report {
    let mut report = Report::default();
    for (path, content) in files {
        let src = SourceFile::new(path, content);
        let file_report = check_file(&src);
        report.files_scanned += 1;
        report.errors.extend(file_report.errors);

        let count = file_report.panic_sites.len();
        if count > 0 {
            report.panic_counts.insert(path.to_string(), count);
        }
        let allowed = baseline.panic_counts.get(path).copied().unwrap_or(0);
        if count > allowed {
            report.ratchet_notes.push(format!(
                "{path}: {count} panic site(s) but the ratchet allows {allowed} — \
                 new panic-capable calls on the serving path"
            ));
            report.ratchet_errors.extend(file_report.panic_sites);
        } else if count < allowed {
            report.ratchet_notes.push(format!(
                "{path}: {count} panic site(s), down from {allowed} — \
                 lock the improvement in with --write-baseline"
            ));
        }
    }
    // Files that disappeared (or dropped to zero sites) still hold a
    // baseline slot; flag them so the ratchet tightens.
    for (path, allowed) in &baseline.panic_counts {
        if *allowed > 0 && !report.panic_counts.contains_key(path) {
            report.ratchet_notes.push(format!(
                "{path}: 0 panic site(s), down from {allowed} — \
                 lock the improvement in with --write-baseline"
            ));
        }
    }
    report
}

/// Collect the workspace source files to lint, as paths relative to
/// `root`. First-party code only: `crates/*/src/**/*.rs`, skipping test
/// trees, benches, examples, and fixtures (test *modules* inside source
/// files are skipped by the scanner itself).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !matches!(name, "tests" | "benches" | "examples" | "fixtures") {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run a full workspace lint rooted at `root`, reading the baseline from
/// `baseline_path` (missing file = empty baseline).
pub fn lint_workspace(root: &Path, baseline_path: &Path) -> Result<Report, String> {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(text) => {
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("{}: {e}", baseline_path.display())),
    };
    let files = workspace_files(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let mut loaded = Vec::with_capacity(files.len());
    for rel in files {
        let content = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("{}: {e}", rel.display()))?;
        // Paths in findings are `/`-separated regardless of platform so
        // the baseline file is portable.
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        loaded.push((rel_str, content));
    }
    Ok(lint_files(
        loaded.iter().map(|(p, c)| (p.as_str(), c.as_str())),
        &baseline,
    ))
}
