//! The five project-specific checks.
//!
//! Each check is a pure function over a preprocessed [`SourceFile`]; which
//! checks apply to a file is decided from its workspace-relative path, so
//! the self-test fixtures can opt into any check by presenting themselves
//! under a synthetic path.

use crate::scan::{boundary_before, SourceFile};

/// Identity of a lint check (also the name used in `allow(...)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Check {
    /// `unwrap()`/`expect(`/`panic!`/... in serving-path crates (ratcheted).
    PanicFreedom,
    /// Device-ledger mutation outside named charge helpers.
    ChargeDiscipline,
    /// `Instant::now()` outside trace-gated code in core hot paths.
    TraceGating,
    /// Metric names at registration sites must match the naming grammar.
    MetricGrammar,
    /// Nested `.lock()` acquisitions must follow the lock-order map.
    LockHygiene,
    /// Malformed `gsi-lint: allow(...)` annotations.
    Annotation,
}

impl Check {
    /// The kebab-case name used in annotations and output.
    pub fn name(self) -> &'static str {
        match self {
            Check::PanicFreedom => "panic-freedom",
            Check::ChargeDiscipline => "charge-discipline",
            Check::TraceGating => "trace-gating",
            Check::MetricGrammar => "metric-grammar",
            Check::LockHygiene => "lock-hygiene",
            Check::Annotation => "annotation",
        }
    }

    /// Parse an annotation's check name. `annotation` itself is not
    /// allowable: a malformed suppression must never self-suppress.
    pub fn from_name(s: &str) -> Option<Check> {
        match s {
            "panic-freedom" => Some(Check::PanicFreedom),
            "charge-discipline" => Some(Check::ChargeDiscipline),
            "trace-gating" => Some(Check::TraceGating),
            "metric-grammar" => Some(Check::MetricGrammar),
            "lock-hygiene" => Some(Check::LockHygiene),
            _ => None,
        }
    }
}

/// One lint finding, anchored to a file and 1-based line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub check: Check,
    pub path: String,
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.check.name(),
            self.message
        )
    }
}

/// Per-file result: hard errors plus the ratcheted panic sites.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that fail the build outright.
    pub errors: Vec<Finding>,
    /// Panic-freedom findings (compared against the ratchet baseline, not
    /// failed directly).
    pub panic_sites: Vec<Finding>,
}

/// Serving-path crates whose panic sites are ratcheted.
const SERVING_CRATES: [&str; 7] = [
    "crates/api/src",
    "crates/core/src",
    "crates/server/src",
    "crates/service/src",
    "crates/signature/src",
    "crates/graph/src",
    "crates/obs/src",
];

/// Files holding the device-ledger strategy kernels (charge discipline).
const CHARGE_FILES: [&str; 5] = [
    "set_ops.rs",
    "radix.rs",
    "join.rs",
    "prealloc.rs",
    "two_step.rs",
];

/// Functions that may touch the device ledger without a `charge_` name:
/// the streaming/probing primitives whose whole body *is* the charge model.
const CHARGE_ALLOWED_FNS: [&str; 2] = ["stream", "probe"];

/// Run every applicable check over one preprocessed file.
pub fn check_file(src: &SourceFile) -> FileReport {
    let mut rep = FileReport::default();
    rep.errors.extend(src.annotation_errors.iter().cloned());

    let path = src.path.as_str();
    let file_name = path.rsplit('/').next().unwrap_or(path);

    if SERVING_CRATES.iter().any(|c| path.contains(c)) {
        panic_freedom(src, &mut rep);
    }
    if path.contains("crates/core/src") && CHARGE_FILES.contains(&file_name) {
        charge_discipline(src, &mut rep);
    }
    if path.contains("crates/core/src") {
        trace_gating(src, &mut rep);
    }
    metric_grammar(src, &mut rep);
    if path.contains("crates/service/src") {
        lock_hygiene(src, &mut rep);
    }
    rep
}

// ---------------------------------------------------------------------------
// Check 1: panic-freedom
// ---------------------------------------------------------------------------

const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

fn panic_freedom(src: &SourceFile, rep: &mut FileReport) {
    for (idx, line) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        for tok in PANIC_TOKENS {
            for pos in occurrences(&line.code, tok) {
                // A leading `.` is its own boundary; for bare macros the
                // preceding byte must not extend an identifier (so `panic!`
                // does not match inside `dont_panic!`).
                if !tok.starts_with('.') && !boundary_before(&line.code, pos) {
                    continue;
                }
                if src.allowed(Check::PanicFreedom, line_no) {
                    continue;
                }
                rep.panic_sites.push(Finding {
                    check: Check::PanicFreedom,
                    path: src.path.clone(),
                    line: line_no,
                    message: format!("panic-capable `{tok}` on the serving path (ratcheted)"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Check 2: charge-discipline
// ---------------------------------------------------------------------------

/// Tokens that mutate the device ledger: the `GpuStats` accessor and the
/// `DeviceVec` warp-stream methods. Inside a strategy file these may only
/// appear in functions named `charge_*` (or the allowlisted streaming
/// primitives), so every kernel arm routes its charges through one named,
/// reviewable helper — the property the counter-equivalence fuzz gates
/// sample dynamically.
const LEDGER_TOKENS: [&str; 6] = [
    ".stats()",
    ".warp_read_one(",
    ".warp_write_one(",
    ".warp_read(",
    ".warp_write(",
    ".warp_gather(",
];

fn charge_discipline(src: &SourceFile, rep: &mut FileReport) {
    let mut fns = FnTracker::default();
    for (idx, line) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        fns.observe(&line.code);
        let mut claimed: Vec<(usize, usize)> = Vec::new();
        for tok in LEDGER_TOKENS {
            for pos in occurrences(&line.code, tok) {
                if claimed.iter().any(|&(s, e)| pos >= s && pos < e) {
                    continue; // `.warp_read_one(` already claimed `.warp_read(`'s prefix
                }
                claimed.push((pos, pos + tok.len()));
                let fn_name = fns.current();
                let ok = fn_name
                    .is_some_and(|f| f.starts_with("charge_") || CHARGE_ALLOWED_FNS.contains(&f));
                if ok || src.allowed(Check::ChargeDiscipline, line_no) {
                    continue;
                }
                rep.errors.push(Finding {
                    check: Check::ChargeDiscipline,
                    path: src.path.clone(),
                    line: line_no,
                    message: format!(
                        "device-ledger access `{tok}` outside a charge_* helper (in `{}`)",
                        fn_name.unwrap_or("<module scope>")
                    ),
                });
            }
        }
    }
}

/// Tracks the innermost enclosing `fn` by brace depth. Token-level: good
/// enough for the strategy files' flat `fn`/closure structure (closures
/// belong to their enclosing named fn, which is exactly the attribution
/// the charge rule wants).
#[derive(Default)]
struct FnTracker {
    depth: usize,
    /// (body depth, fn name); innermost last.
    stack: Vec<(usize, String)>,
    /// A `fn name` seen whose body `{` has not opened yet.
    pending: Option<String>,
}

impl FnTracker {
    fn observe(&mut self, code: &str) {
        if let Some(name) = fn_decl_name(code) {
            self.pending = Some(name);
        }
        for b in code.bytes() {
            match b {
                b'{' => {
                    self.depth += 1;
                    if let Some(name) = self.pending.take() {
                        self.stack.push((self.depth, name));
                    }
                }
                b'}' => {
                    if self.stack.last().is_some_and(|(d, _)| *d == self.depth) {
                        self.stack.pop();
                    }
                    self.depth = self.depth.saturating_sub(1);
                }
                _ => {}
            }
        }
    }

    fn current(&self) -> Option<&str> {
        self.stack.last().map(|(_, n)| n.as_str())
    }
}

/// Extract the name from an `fn` declaration on this line, if any.
fn fn_decl_name(code: &str) -> Option<String> {
    for pos in occurrences(code, "fn ") {
        if !boundary_before(code, pos) {
            continue;
        }
        let rest = &code[pos + 3..];
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            return Some(name);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Check 3: trace-gating
// ---------------------------------------------------------------------------

fn trace_gating(src: &SourceFile, rep: &mut FileReport) {
    for (idx, line) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        for _pos in occurrences(&line.code, "Instant::now") {
            // A timestamp is fine when the same expression is gated on the
            // trace level (`opts.trace.is_on().then(Instant::now)`): the
            // Off path never evaluates it, preserving zero-cost-Off.
            if line.code.contains("is_on") {
                continue;
            }
            if src.allowed(Check::TraceGating, line_no) {
                continue;
            }
            rep.errors.push(Finding {
                check: Check::TraceGating,
                path: src.path.clone(),
                line: line_no,
                message: "ungated `Instant::now` in a core hot path (breaks zero-cost-Off tracing)"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Check 4: metric-grammar
// ---------------------------------------------------------------------------

/// Recognized unit segments (`gsi_<subsystem>_<quantity>[_<unit>][_total]`).
const UNITS: [&str; 5] = ["us", "ns", "ms", "seconds", "bytes"];

const REGISTRY_METHODS: [&str; 3] = [".counter(", ".gauge(", ".histogram("];

fn metric_grammar(src: &SourceFile, rep: &mut FileReport) {
    for (idx, line) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        for m in REGISTRY_METHODS {
            for pos in occurrences(&line.code, m) {
                // The name is the first string literal at/after the call,
                // possibly on a following line (rustfmt wraps these).
                let Some((lit_line, name)) = first_literal(src, idx, pos) else {
                    continue;
                };
                if src.allowed(Check::MetricGrammar, line_no)
                    || src.allowed(Check::MetricGrammar, lit_line)
                {
                    continue;
                }
                if let Err(why) = metric_name_ok(&name) {
                    rep.errors.push(Finding {
                        check: Check::MetricGrammar,
                        path: src.path.clone(),
                        line: lit_line,
                        message: format!(
                            "metric name `{name}` violates `gsi_<subsystem>_<quantity>[_<unit>][_total]`: {why}"
                        ),
                    });
                }
            }
        }
    }
}

/// Find the first string literal at or after byte `pos` of line `idx`,
/// searching a few lines ahead. Returns (1-based line, literal contents
/// with `format!` placeholders replaced by a dummy segment).
fn first_literal(src: &SourceFile, idx: usize, pos: usize) -> Option<(usize, String)> {
    for (off, line) in src.lines.iter().enumerate().skip(idx).take(4) {
        let text = &line.text;
        let from = if off == idx { pos } else { 0 };
        let Some(q) = text[from.min(text.len())..].find('"') else {
            continue;
        };
        let start = from + q + 1;
        let end = text[start..].find('"')? + start;
        let raw = &text[start..end];
        // `format!("gsi_stage_{stage}_us_total", ...)`: a placeholder
        // stands for one lowercase segment, so substitute a dummy one.
        let mut name = String::with_capacity(raw.len());
        let mut chars = raw.chars();
        while let Some(c) = chars.next() {
            if c == '{' {
                for c2 in chars.by_ref() {
                    if c2 == '}' {
                        break;
                    }
                }
                name.push('x');
            } else {
                name.push(c);
            }
        }
        return Some((off + 1, name));
    }
    None
}

/// Validate a metric name against the grammar. The unit and `_total`
/// suffixes are stripped first, then at least two segments (subsystem and
/// quantity) must remain.
pub fn metric_name_ok(name: &str) -> Result<(), String> {
    let Some(rest) = name.strip_prefix("gsi_") else {
        return Err("missing `gsi_` prefix".to_string());
    };
    let mut segs: Vec<&str> = rest.split('_').collect();
    for s in &segs {
        if s.is_empty() {
            return Err("empty segment (doubled or trailing underscore)".to_string());
        }
        let mut cs = s.chars();
        let first_ok = cs.next().is_some_and(|c| c.is_ascii_lowercase());
        if !first_ok || !cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()) {
            return Err(format!("segment `{s}` is not lowercase snake_case"));
        }
    }
    if segs.last() == Some(&"total") {
        segs.pop();
    }
    if segs.last().is_some_and(|s| UNITS.contains(s)) {
        segs.pop();
    }
    if segs.len() < 2 {
        return Err("needs both a subsystem and a quantity segment".to_string());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Check 5: lock-hygiene
// ---------------------------------------------------------------------------

/// The documented lock-order map for `crates/service`: when two of these
/// locks are ever held together, they must be acquired left-to-right.
/// (Derived from the real nestings: `retire_epoch` takes `retired_epochs`
/// then `per_epoch`; `record_completed` takes `run_totals` then
/// `per_epoch`; `ServiceStats::snapshot` materializes its struct literal
/// in this exact field order.) A `.lock()` on a field that is not listed
/// here is itself an error: the map must grow with the code.
pub const LOCK_ORDER: [&str; 11] = [
    "retired_epochs",
    "estimation_error_sum",
    "pre_replan_error_sum",
    "last_update_drift",
    "batch_fill",
    "latencies_us",
    "run_totals",
    "per_epoch",
    "state",
    "inner",
    "prepare_device",
];

fn lock_rank(field: &str) -> Option<usize> {
    LOCK_ORDER.iter().position(|f| *f == field)
}

fn lock_hygiene(src: &SourceFile, rep: &mut FileReport) {
    let mut depth: usize = 0;
    /// A lock known to be held: (block depth it lives at, field, line).
    struct Guard {
        depth: usize,
        field: String,
        line: usize,
    }
    let mut guards: Vec<Guard> = Vec::new(); // let-bound, live to block end
    let mut stmt: Vec<(String, usize)> = Vec::new(); // temporaries, live to `;`

    for (idx, line) in src.lines.iter().enumerate() {
        let line_no = idx + 1;
        let code = &line.code;

        for pos in occurrences(code, ".lock()") {
            let field = ident_before(code, pos);
            if src.allowed(Check::LockHygiene, line_no) {
                continue;
            }
            let Some(rank) = lock_rank(&field) else {
                rep.errors.push(Finding {
                    check: Check::LockHygiene,
                    path: src.path.clone(),
                    line: line_no,
                    message: format!(
                        "`.lock()` on `{field}`, which is not in the documented lock-order map"
                    ),
                });
                continue;
            };
            let held = guards
                .iter()
                .map(|g| (g.field.as_str(), g.line))
                .chain(stmt.iter().map(|(f, l)| (f.as_str(), *l)));
            for (hfield, hline) in held {
                if hfield == field {
                    rep.errors.push(Finding {
                        check: Check::LockHygiene,
                        path: src.path.clone(),
                        line: line_no,
                        message: format!(
                            "`{field}` locked again while already held (guard from line {hline})"
                        ),
                    });
                } else if lock_rank(hfield).is_some_and(|hr| hr > rank) {
                    rep.errors.push(Finding {
                        check: Check::LockHygiene,
                        path: src.path.clone(),
                        line: line_no,
                        message: format!(
                            "`{field}` acquired while holding `{hfield}` (line {hline}) — \
                             violates the lock-order map"
                        ),
                    });
                }
            }
            stmt.push((field, line_no));
        }

        // Update brace depth, releasing let-bound guards when their block
        // closes.
        for b in code.bytes() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }

        // A statement of the exact shape `let [mut] name = <path>.lock();`
        // binds the guard: it stays held to the end of the block. Any
        // other statement drops its lock temporaries at the `;`.
        let trimmed = code.trim();
        let ends_stmt = trimmed.ends_with(';') || trimmed.ends_with('{') || trimmed.ends_with('}');
        if trimmed.starts_with("let ") && trimmed.ends_with(".lock();") {
            if let Some((field, line)) = stmt.pop() {
                guards.push(Guard { depth, field, line });
            }
        }
        if ends_stmt {
            stmt.clear();
        }
    }
}

/// The identifier ending at byte `pos` (e.g. the field in
/// `self.per_epoch.lock()`).
fn ident_before(code: &str, pos: usize) -> String {
    let bytes = code.as_bytes();
    let mut start = pos;
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' {
            start -= 1;
        } else {
            break;
        }
    }
    code[start..pos].to_string()
}

// ---------------------------------------------------------------------------

/// Byte offsets of every occurrence of `needle` in `hay`.
fn occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        out.push(from + p);
        from += p + needle.len();
    }
    out
}
