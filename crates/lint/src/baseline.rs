//! The panic-freedom ratchet baseline (`lint-baseline.toml`).
//!
//! Panic-capable calls on the serving path are not banned outright — the
//! codebase still carries audited invariant panics — but their count per
//! file is pinned here and may only go *down*. A new site fails the lint;
//! removing one also fails until the baseline is tightened with
//! `--write-baseline`, so improvements are locked in, never silently lost.
//!
//! The format is a hand-rolled TOML subset (one section, quoted-path keys,
//! integer values), parsed here so the lint stays dependency-free.

use std::collections::BTreeMap;

/// Parsed baseline: workspace-relative path -> allowed panic-site count.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    pub panic_counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parse the baseline file. Unknown sections are an error: a typo'd
    /// section would otherwise silently ratchet nothing.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        let mut in_panic_section = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                if section != "panic-freedom" {
                    return Err(format!(
                        "line {}: unknown baseline section `[{}]`",
                        idx + 1,
                        section
                    ));
                }
                in_panic_section = true;
                continue;
            }
            if !in_panic_section {
                return Err(format!("line {}: entry before any section", idx + 1));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `\"path\" = count`", idx + 1));
            };
            let path = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("line {}: path must be quoted", idx + 1))?;
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("line {}: count must be an integer", idx + 1))?;
            if counts.insert(path.to_string(), count).is_some() {
                return Err(format!("line {}: duplicate entry for `{path}`", idx + 1));
            }
        }
        Ok(Baseline {
            panic_counts: counts,
        })
    }

    /// Render a baseline file from current counts (zero-count files are
    /// omitted — absence means zero).
    pub fn render(counts: &BTreeMap<String, usize>) -> String {
        let mut out = String::from(
            "# gsi-lint panic-freedom ratchet baseline.\n\
             # Counts may only decrease; regenerate with `cargo run -p gsi-lint -- --workspace --write-baseline`.\n\
             \n[panic-freedom]\n",
        );
        for (path, n) in counts {
            if *n > 0 {
                out.push_str(&format!("\"{path}\" = {n}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/core/src/plan.rs".to_string(), 2);
        counts.insert("crates/graph/src/io.rs".to_string(), 0);
        let text = Baseline::render(&counts);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.panic_counts.len(), 1, "zero entries omitted");
        assert_eq!(parsed.panic_counts["crates/core/src/plan.rs"], 2);
    }

    #[test]
    fn rejects_unknown_section_and_garbage() {
        assert!(Baseline::parse("[charge]\n").is_err());
        assert!(Baseline::parse("\"a\" = 1\n").is_err());
        assert!(Baseline::parse("[panic-freedom]\na = 1\n").is_err());
        assert!(Baseline::parse("[panic-freedom]\n\"a\" = x\n").is_err());
        assert!(Baseline::parse("[panic-freedom]\n\"a\" = 1\n\"a\" = 2\n").is_err());
    }
}
