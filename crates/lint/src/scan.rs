//! Source preprocessing for the lint passes.
//!
//! The checks in [`crate::checks`] are token-level, in the spirit of
//! rustc's `tidy`: no full parse, no external parser crates. For that to
//! be sound the raw source must first be normalized so that tokens inside
//! comments, string literals, and test modules cannot trigger findings.
//! This module produces, per line:
//!
//! - a **code** view: comments *and* string/char literal contents removed
//!   (used by every token check except metric-grammar),
//! - a **text** view: comments removed but literals kept verbatim (used by
//!   the metric-grammar check, which must read the literal),
//!
//! plus the set of `// gsi-lint: allow(...)` annotations (parsed from the
//! raw lines, since annotations live in comments) and the index of the
//! first `#[cfg(test)]` line, after which scanning stops. Test modules in
//! this codebase are by convention the trailing `mod tests` block, so a
//! hard stop at the first `#[cfg(test)]` is both simple and exact.

use crate::checks::{Check, Finding};
use std::collections::HashMap;

/// One source line in both normalized views.
#[derive(Debug)]
pub struct Line {
    /// Comments and literal contents stripped (literals become `""`).
    pub code: String,
    /// Comments stripped, literals kept verbatim.
    pub text: String,
    /// The `//` line-comment text, if any — where annotations live.
    /// `None` for doc comments (`///`, `//!`), which merely *describe*
    /// the annotation syntax and must not activate it.
    comment: Option<String>,
}

/// A preprocessed source file ready for the token checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in findings (workspace-relative).
    pub path: String,
    /// Normalized lines, only up to the first `#[cfg(test)]`.
    pub lines: Vec<Line>,
    /// Line number (1-based) -> checks allowed on that line's *target*.
    /// An annotation suppresses findings on its own line and on the line
    /// directly below it (the usual "annotation above the statement" form).
    allows: HashMap<usize, Vec<Check>>,
    /// Malformed-annotation findings discovered while parsing.
    pub annotation_errors: Vec<Finding>,
}

impl SourceFile {
    /// Preprocess `content` (the raw file) under the reporting path `path`.
    pub fn new(path: &str, content: &str) -> SourceFile {
        let mut lines = Vec::new();
        let mut allows = HashMap::new();
        let mut annotation_errors = Vec::new();
        let mut strip = Stripper::default();

        for (idx, raw) in content.lines().enumerate() {
            let line_no = idx + 1;
            if raw.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            let line = strip.line(raw);
            if let Some(comment) = &line.comment {
                parse_allow(path, comment, line_no, &mut allows, &mut annotation_errors);
            }
            lines.push(line);
        }

        SourceFile {
            path: path.to_string(),
            lines,
            allows,
            annotation_errors,
        }
    }

    /// Whether a finding of `check` on `line_no` is suppressed by an
    /// annotation on the same line or the line above.
    pub fn allowed(&self, check: Check, line_no: usize) -> bool {
        let hit = |n: &usize| self.allows.get(n).is_some_and(|cs| cs.contains(&check));
        hit(&line_no) || (line_no > 1 && hit(&(line_no - 1)))
    }
}

const ALLOW_MARKER: &str = "gsi-lint: allow(";

/// Parse a `gsi-lint: allow(<check>, reason = "...")` annotation out of a
/// line comment's text. Malformed annotations (unknown check, missing or
/// empty reason) are hard errors: a suppression that silently fails to
/// parse would otherwise *widen* the lint's blind spot.
fn parse_allow(
    path: &str,
    raw: &str,
    line_no: usize,
    allows: &mut HashMap<usize, Vec<Check>>,
    errors: &mut Vec<Finding>,
) {
    let Some(start) = raw.find(ALLOW_MARKER) else {
        return;
    };
    let mut err = |msg: &str| {
        errors.push(Finding {
            check: Check::Annotation,
            path: path.to_string(),
            line: line_no,
            message: msg.to_string(),
        });
    };
    // Parse structurally rather than slicing at the first `)`: the quoted
    // reason may itself contain parens, commas, or quotes-in-backticks.
    let rest = &raw[start + ALLOW_MARKER.len()..];
    let Some((name, after)) = rest.split_once(',') else {
        err("allow annotation needs `, reason = \"...\"` — suppressions must be justified");
        return;
    };
    let Some(check) = Check::from_name(name.trim()) else {
        err(&format!(
            "unknown check `{}` in allow annotation",
            name.trim()
        ));
        return;
    };
    let quoted = after
        .trim_start()
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('"'));
    let Some(quoted) = quoted else {
        err("allow annotation reason must be `reason = \"...\"`");
        return;
    };
    let Some(end_quote) = quoted.find('"') else {
        err("unterminated reason string in allow annotation");
        return;
    };
    if quoted[..end_quote].trim().is_empty() {
        err("allow annotation has an empty reason");
        return;
    }
    if !quoted[end_quote + 1..].trim_start().starts_with(')') {
        err("allow annotation must close with `)` after the reason");
        return;
    }
    allows.entry(line_no).or_default().push(check);
}

/// Carries string/comment state across lines.
#[derive(Default)]
struct Stripper {
    /// Inside a `/* ... */` comment (they do not nest in practice here).
    in_block_comment: bool,
}

impl Stripper {
    /// Produce both normalized views of one raw line.
    ///
    /// String and char literals are assumed not to span lines (true for
    /// this codebase outside test modules); block comments may.
    fn line(&mut self, raw: &str) -> Line {
        let mut code = String::with_capacity(raw.len());
        let mut text = String::with_capacity(raw.len());
        let mut comment = None;
        let bytes = raw.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if self.in_block_comment {
                if bytes[i..].starts_with(b"*/") {
                    self.in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match bytes[i] {
                b'/' if bytes[i..].starts_with(b"//") => {
                    // Plain line comment: annotation territory. Doc
                    // comments (`///`, `//!`) only document the syntax.
                    if !bytes[i..].starts_with(b"///") && !bytes[i..].starts_with(b"//!") {
                        comment = Some(raw[i + 2..].to_string());
                    }
                    break;
                }
                b'/' if bytes[i..].starts_with(b"/*") => {
                    self.in_block_comment = true;
                    i += 2;
                }
                b'"' => {
                    // Scan to the closing quote, honoring escapes.
                    let start = i;
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    code.push_str("\"\"");
                    text.push_str(&raw[start..i.min(bytes.len())]);
                }
                b'\'' => {
                    // Char literal ('x', '\n', '\'') vs lifetime ('a in
                    // &'a T). A lifetime is a quote followed by an ident
                    // with no closing quote right after.
                    let lit_len = char_literal_len(&bytes[i..]);
                    if lit_len > 0 {
                        code.push_str("''");
                        text.push_str(&raw[i..i + lit_len]);
                        i += lit_len;
                    } else {
                        code.push('\'');
                        text.push('\'');
                        i += 1;
                    }
                }
                b => {
                    code.push(b as char);
                    text.push(b as char);
                    i += 1;
                }
            }
        }
        Line {
            code,
            text,
            comment,
        }
    }
}

/// Length of a char literal starting at `b[0] == b'\''`, or 0 if this is a
/// lifetime/label rather than a literal.
fn char_literal_len(b: &[u8]) -> usize {
    if b.len() >= 4 && b[1] == b'\\' && b[3] == b'\'' {
        return 4; // '\n'
    }
    if b.len() >= 3 && b[1] != b'\\' && b[2] == b'\'' {
        return 3; // 'x'
    }
    0
}

/// Whether the byte before `pos` permits a token boundary (so `panic!`
/// does not match inside `dont_panic!`).
pub fn boundary_before(s: &str, pos: usize) -> bool {
    pos == 0 || !s.as_bytes()[pos - 1].is_ascii_alphanumeric() && s.as_bytes()[pos - 1] != b'_'
}
