//! The `gsi-lint` binary.
//!
//! ```text
//! gsi-lint --workspace                     # lint the whole workspace
//! gsi-lint --workspace --write-baseline    # tighten the panic ratchet
//! gsi-lint --root <dir> --workspace        # lint another tree (self-tests)
//! ```
//!
//! Exits 0 when clean, 1 on findings or ratchet drift, 2 on usage or I/O
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut workspace = false;
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--write-baseline" => write_baseline = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage("pass --workspace to lint the crate tree");
    }

    let baseline_path = baseline.unwrap_or_else(|| root.join("lint-baseline.toml"));
    let report = match gsi_lint::lint_workspace(&root, &baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gsi-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let text = gsi_lint::Baseline::render(&report.panic_counts);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("gsi-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "gsi-lint: wrote {} ({} ratcheted file(s))",
            baseline_path.display(),
            report.panic_counts.len()
        );
        // Hard findings still fail the run: the ratchet only covers
        // panic-freedom, never the other checks.
        if !report.errors.is_empty() {
            print_errors(&report.errors);
            return ExitCode::from(1);
        }
        return ExitCode::SUCCESS;
    }

    print_errors(&report.errors);
    print_errors(&report.ratchet_errors);
    for note in &report.ratchet_notes {
        println!("ratchet: {note}");
    }
    if report.clean() {
        println!("gsi-lint: clean ({} files scanned)", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        println!(
            "gsi-lint: {} finding(s), {} ratchet note(s)",
            report.errors.len() + report.ratchet_errors.len(),
            report.ratchet_notes.len()
        );
        ExitCode::from(1)
    }
}

fn print_errors(errors: &[gsi_lint::Finding]) {
    for f in errors {
        println!("{f}");
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("gsi-lint: {msg}");
    eprintln!("usage: gsi-lint --workspace [--root <dir>] [--baseline <path>] [--write-baseline]");
    ExitCode::from(2)
}
