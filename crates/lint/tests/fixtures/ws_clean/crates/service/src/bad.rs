//! Clean-workspace fixture: one panic site, exactly what the baseline pins.
pub fn bad(v: Option<u32>) -> u32 {
    v.unwrap()
}
