//! Seeded ratchet-regression fixture: one panic site, baseline allows zero.
pub fn bad(v: Option<u32>) -> u32 {
    v.unwrap()
}
