//! Mutation battery for the lint itself.
//!
//! Each check gets a fixture with a *seeded violation* and the test asserts
//! the exact finding count, check identity, and file:line anchors — so a
//! regression that makes a check silently stop firing (the classic static-
//! analysis failure mode) breaks this suite, not the codebase. The binary
//! is exercised end-to-end on miniature workspace trees under
//! `tests/fixtures/` to pin the exit-code contract.

use gsi_lint::{check_file, lint_files, metric_name_ok, Baseline, Check, SourceFile};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn report_for(path: &str, content: &str) -> gsi_lint::FileReport {
    check_file(&SourceFile::new(path, content))
}

fn anchors(findings: &[gsi_lint::Finding]) -> Vec<(String, usize)> {
    findings.iter().map(|f| (f.path.clone(), f.line)).collect()
}

// ---------------------------------------------------------------------------
// Check 1: panic-freedom
// ---------------------------------------------------------------------------

#[test]
fn panic_freedom_flags_each_seeded_site() {
    let src = "\
pub fn a(v: Option<u32>) -> u32 {
    v.unwrap()
}
pub fn b(v: Option<u32>) -> u32 {
    v.expect(\"present\")
}
fn c() {
    unreachable!(\"seeded\");
}
";
    let rep = report_for("crates/core/src/fixture.rs", src);
    assert!(rep.errors.is_empty(), "panic sites ratchet, not hard-fail");
    assert_eq!(rep.panic_sites.len(), 3);
    assert!(rep
        .panic_sites
        .iter()
        .all(|f| f.check == Check::PanicFreedom));
    assert_eq!(
        anchors(&rep.panic_sites),
        vec![
            ("crates/core/src/fixture.rs".to_string(), 2),
            ("crates/core/src/fixture.rs".to_string(), 5),
            ("crates/core/src/fixture.rs".to_string(), 8),
        ]
    );
}

#[test]
fn panic_freedom_ignores_test_modules_comments_and_strings() {
    let src = "\
pub fn a() -> &'static str {
    // a comment mentioning .unwrap() is inert
    \"a string mentioning .unwrap() is inert\"
}
#[cfg(test)]
mod tests {
    fn t(v: Option<u32>) {
        v.unwrap(); // test code is out of scope
    }
}
";
    let rep = report_for("crates/core/src/fixture.rs", src);
    assert!(rep.panic_sites.is_empty());
    assert!(rep.errors.is_empty());
}

#[test]
fn panic_freedom_outside_serving_crates_is_out_of_scope() {
    let rep = report_for(
        "crates/bench/src/fixture.rs",
        "fn a(v: Option<u32>) { v.unwrap(); }\n",
    );
    assert!(rep.panic_sites.is_empty());
}

// ---------------------------------------------------------------------------
// Check 2: charge-discipline
// ---------------------------------------------------------------------------

#[test]
fn charge_discipline_flags_ledger_access_outside_charge_helpers() {
    let src = "\
fn charge_row(gpu: &Gpu) {
    gpu.stats().gld(1);
}
fn kernel(gpu: &Gpu, buf: &DeviceVec) {
    gpu.stats().gld(1);
    buf.warp_read(0, 4);
}
";
    let rep = report_for("crates/core/src/set_ops.rs", src);
    assert_eq!(rep.errors.len(), 2, "only the two sites in `kernel`");
    assert!(rep
        .errors
        .iter()
        .all(|f| f.check == Check::ChargeDiscipline));
    assert_eq!(
        anchors(&rep.errors),
        vec![
            ("crates/core/src/set_ops.rs".to_string(), 5),
            ("crates/core/src/set_ops.rs".to_string(), 6),
        ]
    );
    assert!(rep.errors[0].message.contains("in `kernel`"));
}

#[test]
fn charge_discipline_attributes_closures_to_the_enclosing_fn() {
    let src = "\
fn charge_all(gpu: &Gpu, rows: &[u32]) {
    rows.iter().for_each(|r| {
        gpu.stats().gld(*r as u64);
    });
}
";
    let rep = report_for("crates/core/src/radix.rs", src);
    assert!(rep.errors.is_empty(), "closure body belongs to charge_all");
}

#[test]
fn charge_discipline_only_applies_to_strategy_files() {
    let src = "fn anywhere(gpu: &Gpu) { gpu.stats().gld(1); }\n";
    assert!(report_for("crates/core/src/engine.rs", src)
        .errors
        .is_empty());
    assert_eq!(report_for("crates/core/src/join.rs", src).errors.len(), 1);
}

// ---------------------------------------------------------------------------
// Check 3: trace-gating
// ---------------------------------------------------------------------------

#[test]
fn trace_gating_flags_ungated_instant_now() {
    let src = "\
fn f(opts: &Opts) {
    let t = Instant::now();
    let gated = opts.trace.is_on().then(Instant::now);
}
";
    let rep = report_for("crates/core/src/engine.rs", src);
    assert_eq!(rep.errors.len(), 1, "the is_on-gated timestamp is fine");
    assert_eq!(rep.errors[0].check, Check::TraceGating);
    assert_eq!(rep.errors[0].line, 2);
}

// ---------------------------------------------------------------------------
// Check 4: metric-grammar
// ---------------------------------------------------------------------------

#[test]
fn metric_grammar_flags_malformed_names_at_registration() {
    let src = "\
fn reg(r: &MetricsRegistry) {
    r.counter(\"gsi_query_matches_total\", \"ok\");
    r.counter(\"matches_total\", \"missing prefix\");
    r.gauge(\"gsi_workers\", \"missing quantity\");
    r.histogram(
        \"gsi_query_latency_us\",
        \"wrapped by rustfmt, still found\",
    );
}
";
    let rep = report_for("crates/obs/src/metrics.rs", src);
    assert_eq!(rep.errors.len(), 2);
    assert!(rep.errors.iter().all(|f| f.check == Check::MetricGrammar));
    assert_eq!(
        anchors(&rep.errors),
        vec![
            ("crates/obs/src/metrics.rs".to_string(), 3),
            ("crates/obs/src/metrics.rs".to_string(), 4),
        ]
    );
}

#[test]
fn metric_grammar_accepts_format_placeholders_as_segments() {
    let src =
        "fn reg(r: &M, s: &str) { r.counter(&format!(\"gsi_stage_{s}_us_total\"), \"d\"); }\n";
    assert!(report_for("crates/obs/src/x.rs", src).errors.is_empty());
}

#[test]
fn metric_name_grammar_unit_rules() {
    assert!(metric_name_ok("gsi_query_latency_us").is_ok());
    assert!(metric_name_ok("gsi_service_uptime_seconds").is_ok());
    assert!(metric_name_ok("gsi_query_replans_total").is_ok());
    assert!(
        metric_name_ok("gsi_us").is_err(),
        "unit alone has no quantity"
    );
    assert!(
        metric_name_ok("gsi_query__latency").is_err(),
        "empty segment"
    );
    assert!(metric_name_ok("gsi_Query_latency").is_err(), "case");
    assert!(metric_name_ok("queries_total").is_err(), "prefix");
}

// ---------------------------------------------------------------------------
// Check 5: lock-hygiene
// ---------------------------------------------------------------------------

#[test]
fn lock_hygiene_flags_order_inversion_and_unknown_fields() {
    let src = "\
impl S {
    fn inverted(&self) {
        let a = self.per_epoch.lock();
        let b = self.run_totals.lock();
    }
    fn unknown(&self) {
        self.mystery.lock();
    }
    fn ordered(&self) {
        let a = self.run_totals.lock();
        let b = self.per_epoch.lock();
    }
}
";
    let rep = report_for("crates/service/src/stats.rs", src);
    assert_eq!(rep.errors.len(), 2);
    assert!(rep.errors.iter().all(|f| f.check == Check::LockHygiene));
    assert_eq!(rep.errors[0].line, 4);
    assert!(rep.errors[0]
        .message
        .contains("violates the lock-order map"));
    assert_eq!(rep.errors[1].line, 7);
    assert!(rep.errors[1]
        .message
        .contains("not in the documented lock-order map"));
}

#[test]
fn lock_hygiene_releases_guards_at_block_end() {
    let src = "\
impl S {
    fn f(&self) {
        {
            let a = self.per_epoch.lock();
        }
        let b = self.run_totals.lock();
    }
}
";
    let rep = report_for("crates/service/src/stats.rs", src);
    assert!(rep.errors.is_empty(), "per_epoch guard died with its block");
}

// ---------------------------------------------------------------------------
// Allow annotations
// ---------------------------------------------------------------------------

#[test]
fn allow_annotation_suppresses_exactly_its_check() {
    let src = "\
pub fn a(v: Option<u32>) -> u32 {
    // gsi-lint: allow(panic-freedom, reason = \"fixture: audited invariant\")
    v.unwrap()
}
fn f(opts: &Opts) {
    let t = Instant::now();
}
";
    let rep = report_for("crates/core/src/fixture.rs", src);
    assert!(
        rep.panic_sites.is_empty(),
        "annotation covers the line below"
    );
    assert_eq!(rep.errors.len(), 1, "trace-gating is not covered by it");
    assert_eq!(rep.errors[0].check, Check::TraceGating);
}

#[test]
fn allow_annotation_reason_may_contain_parens_and_commas() {
    let src = "\
pub fn a(v: Option<u32>) -> u32 {
    // gsi-lint: allow(panic-freedom, reason = \"prepare() always builds it, by construction\")
    v.unwrap()
}
";
    let rep = report_for("crates/core/src/fixture.rs", src);
    assert!(rep.panic_sites.is_empty());
    assert!(rep.errors.is_empty());
}

#[test]
fn malformed_allow_annotations_are_hard_errors() {
    let cases = [
        ("// gsi-lint: allow(panic-freedom)\n", "needs `, reason"),
        (
            "// gsi-lint: allow(panics, reason = \"x\")\n",
            "unknown check",
        ),
        (
            "// gsi-lint: allow(panic-freedom, reason = \"\")\n",
            "empty reason",
        ),
        (
            "// gsi-lint: allow(annotation, reason = \"self-suppress\")\n",
            "unknown check",
        ),
    ];
    for (line, expect) in cases {
        let rep = report_for("crates/core/src/fixture.rs", line);
        assert_eq!(rep.errors.len(), 1, "for {line:?}");
        assert_eq!(rep.errors[0].check, Check::Annotation);
        assert!(
            rep.errors[0].message.contains(expect),
            "{:?} should mention {expect:?}",
            rep.errors[0].message
        );
    }
}

#[test]
fn doc_comments_describing_the_syntax_are_inert() {
    let src = "/// Suppress with `// gsi-lint: allow(panic-freedom)` — malformed on purpose.\nfn a() {}\n";
    let rep = report_for("crates/core/src/fixture.rs", src);
    assert!(rep.errors.is_empty());
}

// ---------------------------------------------------------------------------
// Ratchet semantics (library level)
// ---------------------------------------------------------------------------

const TWO_SITES: &str = "fn a(v: Option<u32>) { v.unwrap(); v.unwrap(); }\n";

fn baseline(path: &str, n: usize) -> Baseline {
    let mut counts = BTreeMap::new();
    counts.insert(path.to_string(), n);
    Baseline {
        panic_counts: counts,
    }
}

#[test]
fn ratchet_blocks_a_count_regression() {
    let path = "crates/service/src/fixture.rs";
    let report = lint_files([(path, TWO_SITES)], &baseline(path, 1));
    assert!(!report.clean());
    assert_eq!(report.ratchet_notes.len(), 1);
    assert!(report.ratchet_notes[0].contains("2 panic site(s) but the ratchet allows 1"));
    assert!(report.errors.is_empty(), "regressions are not hard errors");
    assert_eq!(
        report.ratchet_errors.len(),
        2,
        "sites surface with anchors on regression"
    );
}

#[test]
fn ratchet_accepts_a_matching_count() {
    let path = "crates/service/src/fixture.rs";
    let report = lint_files([(path, TWO_SITES)], &baseline(path, 2));
    assert!(report.clean());
}

#[test]
fn ratchet_flags_an_unlocked_improvement() {
    let path = "crates/service/src/fixture.rs";
    let report = lint_files([(path, TWO_SITES)], &baseline(path, 3));
    assert!(!report.clean(), "improvements must be locked in, not drift");
    assert!(report.ratchet_notes[0].contains("down from 3"));
    assert!(report.errors.is_empty());
    assert!(report.ratchet_errors.is_empty());
    let gone = lint_files([], &baseline(path, 3));
    assert!(!gone.clean(), "a deleted file still holds a baseline slot");
}

// ---------------------------------------------------------------------------
// Binary end-to-end: exit codes on fixture workspaces
// ---------------------------------------------------------------------------

fn run_lint(root: &Path, extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_gsi-lint"))
        .arg("--workspace")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn gsi-lint");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("exit code"), text)
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn binary_fails_on_a_ratchet_regression_with_anchored_findings() {
    let (code, text) = run_lint(&fixture("ws_regression"), &[]);
    assert_eq!(code, 1, "output was: {text}");
    assert!(
        text.contains("crates/service/src/bad.rs:3: [panic-freedom]"),
        "finding must be anchored to file:line; output was: {text}"
    );
    assert!(text.contains("ratchet allows 0"), "output was: {text}");
}

#[test]
fn binary_passes_a_workspace_that_matches_its_baseline() {
    let (code, text) = run_lint(&fixture("ws_clean"), &[]);
    assert_eq!(code, 0, "output was: {text}");
    assert!(
        text.contains("clean (1 files scanned)"),
        "output was: {text}"
    );
}

#[test]
fn binary_exits_2_on_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_gsi-lint"))
        .output()
        .expect("spawn gsi-lint");
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing --workspace is a usage error"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_gsi-lint"))
        .args(["--workspace", "--frobnicate"])
        .output()
        .expect("spawn gsi-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn write_baseline_locks_in_the_current_counts() {
    // Copy the regression fixture into a scratch tree (fixtures stay
    // pristine), then tighten its baseline and re-lint.
    let scratch = std::env::temp_dir().join(format!(
        "gsi-lint-selftest-{}-write-baseline",
        std::process::id()
    ));
    let src_dir = scratch.join("crates/service/src");
    std::fs::create_dir_all(&src_dir).expect("scratch tree");
    std::fs::copy(
        fixture("ws_regression").join("crates/service/src/bad.rs"),
        src_dir.join("bad.rs"),
    )
    .expect("copy fixture source");

    // No baseline at all: the new site is a regression against zero.
    let (code, _) = run_lint(&scratch, &[]);
    assert_eq!(code, 1);

    let (code, text) = run_lint(&scratch, &["--write-baseline"]);
    assert_eq!(code, 0, "no hard findings, so writing succeeds: {text}");
    let written =
        std::fs::read_to_string(scratch.join("lint-baseline.toml")).expect("baseline written");
    assert!(written.contains("\"crates/service/src/bad.rs\" = 1"));

    let (code, text) = run_lint(&scratch, &[]);
    assert_eq!(code, 0, "pinned count now passes: {text}");

    std::fs::remove_dir_all(&scratch).ok();
}
