//! The vertex signature table in simulated global memory (§III-A, Fig. 8(b)–(d)).
//!
//! During filtering, all 32 threads of a warp read the *same word index* of
//! 32 *different* signatures. In row-first layout those addresses are
//! `words_per_sig` apart — a scattered gather (Fig. 8(c), "memory access
//! gap"). In column-first layout they are consecutive — one coalesced
//! transaction (Fig. 8(d)). [`SignatureTable`] stores either layout and
//! charges warp reads through the device ledger accordingly.

use crate::encode::{encode_all, SignatureConfig};
use gsi_gpu_sim::{DeviceVec, Gpu};
use gsi_graph::Graph;

/// Memory layout of the signature table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// Signature-major: signature `i`'s words are contiguous.
    RowFirst,
    /// Word-major: word `w` of all signatures is contiguous (the paper's
    /// choice — warp reads coalesce).
    #[default]
    ColumnFirst,
}

/// Device-resident table of all data-vertex signatures.
#[derive(Debug)]
pub struct SignatureTable {
    layout: Layout,
    n_sigs: usize,
    words_per_sig: usize,
    words: DeviceVec<u32>,
    cfg: SignatureConfig,
}

impl SignatureTable {
    /// Encode every vertex of `g` offline and upload in the given layout.
    pub fn build(gpu: &Gpu, g: &Graph, cfg: &SignatureConfig, layout: Layout) -> Self {
        cfg.validate();
        let sigs = encode_all(g, cfg);
        let n = sigs.len();
        let wps = cfg.words();
        let mut words = vec![0u32; n * wps];
        for (i, s) in sigs.iter().enumerate() {
            for (w, &val) in s.words().iter().enumerate() {
                words[Self::addr_in(layout, n, wps, i, w)] = val;
            }
        }
        Self {
            layout,
            n_sigs: n,
            words_per_sig: wps,
            words: DeviceVec::from_vec(gpu, words),
            cfg: *cfg,
        }
    }

    /// Number of signatures (data vertices).
    pub fn n_sigs(&self) -> usize {
        self.n_sigs
    }

    /// Words per signature (`N / 32`).
    pub fn words_per_sig(&self) -> usize {
        self.words_per_sig
    }

    /// The encoding parameters.
    pub fn config(&self) -> &SignatureConfig {
        &self.cfg
    }

    /// The layout in use.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Table footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }

    #[inline]
    fn addr_in(layout: Layout, n: usize, wps: usize, sig: usize, word: usize) -> usize {
        match layout {
            Layout::RowFirst => sig * wps + word,
            Layout::ColumnFirst => word * n + sig,
        }
    }

    #[inline]
    fn addr(&self, sig: usize, word: usize) -> usize {
        Self::addr_in(self.layout, self.n_sigs, self.words_per_sig, sig, word)
    }

    /// Host read of one signature word (no charge).
    pub fn word_host(&self, sig: usize, word: usize) -> u32 {
        self.words.as_slice()[self.addr(sig, word)]
    }

    /// Incremental refresh after a graph mutation: re-encode only `touched`
    /// vertices against the mutated graph `g` and return a new table (the
    /// original stays valid for epochs still serving it).
    ///
    /// An edge mutation perturbs exactly its endpoints' signatures — a
    /// vertex's signature reads its own label and its incident `(edge
    /// label, neighbor label)` pairs, nothing transitive — so re-encoding
    /// the touched set reproduces `SignatureTable::build(gpu, g, ..)` bit
    /// for bit. Returns `None` when the vertex count changed (the
    /// column-first layout interleaves all signatures word-by-word, so
    /// growth forces a relayout): the caller rebuilds instead.
    pub fn refreshed(&self, gpu: &Gpu, g: &Graph, touched: &[u32]) -> Option<Self> {
        if g.n_vertices() != self.n_sigs {
            return None;
        }
        let mut words = self.words.as_slice().to_vec();
        for &v in touched {
            let sig = crate::encode::encode_vertex(g, v, &self.cfg);
            for (w, &val) in sig.words().iter().enumerate() {
                words[self.addr(v as usize, w)] = val;
            }
        }
        Some(Self {
            layout: self.layout,
            n_sigs: self.n_sigs,
            words_per_sig: self.words_per_sig,
            words: DeviceVec::from_vec(gpu, words),
            cfg: self.cfg,
        })
    }

    /// Charge a warp's read of word `word` for the given (≤ 32) signature
    /// indices — one transaction per distinct 128-byte segment, which is 1
    /// for a full warp in column-first layout and up to 32 in row-first.
    pub fn charge_warp_word_read(&self, gpu: &Gpu, word: usize, sigs: &[usize]) {
        debug_assert!(sigs.len() <= 32);
        gpu.stats()
            .gld_gather(sigs.iter().map(|&s| self.addr(s, word)), 4);
        gpu.stats().add_work(sigs.len() as u64);
    }

    /// Charge a full-warp read of word `word` for a *contiguous* signature
    /// range — the hot path of the filtering kernel's first iteration. In
    /// column-first layout this is a coalesced span; row-first degenerates
    /// to the scattered gather.
    pub fn charge_warp_word_read_range(&self, gpu: &Gpu, word: usize, start: usize, len: usize) {
        debug_assert!(len <= 32);
        match self.layout {
            Layout::ColumnFirst => {
                gpu.stats().gld_range(self.addr(start, word), len, 4);
            }
            Layout::RowFirst => {
                gpu.stats()
                    .gld_gather((start..start + len).map(|s| self.addr(s, word)), 4);
            }
        }
        gpu.stats().add_work(len as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsi_gpu_sim::DeviceConfig;
    use gsi_graph::generate::{barabasi_albert, LabelModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gpu() -> Gpu {
        Gpu::new(DeviceConfig::test_device())
    }

    fn graph() -> Graph {
        let model = LabelModel::uniform(4, 4);
        barabasi_albert(100, 2, &model, &mut StdRng::seed_from_u64(5))
    }

    #[test]
    fn layouts_store_identical_values() {
        let g = graph();
        let cfg = SignatureConfig::with_n(128);
        let gpu = gpu();
        let row = SignatureTable::build(&gpu, &g, &cfg, Layout::RowFirst);
        let col = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst);
        for sig in 0..g.n_vertices() {
            for w in 0..cfg.words() {
                assert_eq!(row.word_host(sig, w), col.word_host(sig, w));
            }
        }
    }

    #[test]
    fn column_first_warp_read_is_one_transaction() {
        let g = graph();
        let cfg = SignatureConfig::with_n(128);
        let gpu = gpu();
        let col = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst);
        gpu.reset_stats();
        let sigs: Vec<usize> = (0..32).collect();
        col.charge_warp_word_read(&gpu, 0, &sigs);
        assert_eq!(gpu.stats().snapshot().gld_transactions, 1);
    }

    #[test]
    fn row_first_warp_read_scatters() {
        let g = graph();
        let cfg = SignatureConfig::with_n(128); // 4 words per sig
        let gpu = gpu();
        let row = SignatureTable::build(&gpu, &g, &cfg, Layout::RowFirst);
        gpu.reset_stats();
        let sigs: Vec<usize> = (0..32).collect();
        row.charge_warp_word_read(&gpu, 0, &sigs);
        // 32 sigs × 4 words apart = stride 16B ⇒ 8 sigs per 128B segment ⇒ 4.
        assert_eq!(gpu.stats().snapshot().gld_transactions, 4);
    }

    #[test]
    fn row_first_wide_signature_is_fully_scattered() {
        let g = graph();
        let cfg = SignatureConfig::default(); // 16 words = 64B per sig
        let gpu = gpu();
        let row = SignatureTable::build(&gpu, &g, &cfg, Layout::RowFirst);
        gpu.reset_stats();
        let sigs: Vec<usize> = (0..32).collect();
        row.charge_warp_word_read(&gpu, 0, &sigs);
        // 64B stride: 2 sigs per segment ⇒ 16 transactions vs 1 coalesced.
        assert_eq!(gpu.stats().snapshot().gld_transactions, 16);
    }

    #[test]
    fn refresh_matches_cold_build_after_mutation() {
        use gsi_graph::update::UpdateBatch;
        let g = graph();
        let gpu = gpu();
        let cfg = SignatureConfig::default();
        for layout in [Layout::RowFirst, Layout::ColumnFirst] {
            let table = SignatureTable::build(&gpu, &g, &cfg, layout);
            let mut batch = UpdateBatch::new();
            batch.insert_edge(0, 5, 2).remove_edge(
                g.edges()[0].u,
                g.edges()[0].v,
                g.edges()[0].label,
            );
            let g2 = g.apply_updates(&batch).expect("valid");
            let refreshed = table
                .refreshed(&gpu, &g2, &batch.touched_vertices())
                .expect("vertex count unchanged");
            let cold = SignatureTable::build(&gpu, &g2, &cfg, layout);
            for sig in 0..g2.n_vertices() {
                for w in 0..cfg.words() {
                    assert_eq!(
                        refreshed.word_host(sig, w),
                        cold.word_host(sig, w),
                        "sig {sig} word {w} ({layout:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn refresh_refuses_vertex_growth() {
        use gsi_graph::update::UpdateBatch;
        let g = graph();
        let gpu = gpu();
        let table = SignatureTable::build(&gpu, &g, &SignatureConfig::default(), Layout::default());
        let mut batch = UpdateBatch::new();
        batch.add_vertex(0);
        let g2 = g.apply_updates(&batch).expect("valid");
        assert!(table.refreshed(&gpu, &g2, &[]).is_none());
    }

    #[test]
    fn table_size() {
        let g = graph();
        let cfg = SignatureConfig::default();
        let gpu = gpu();
        let t = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst);
        assert_eq!(t.size_bytes(), g.n_vertices() * 64);
        assert_eq!(t.n_sigs(), g.n_vertices());
        assert_eq!(t.words_per_sig(), 16);
    }
}
