//! The filtering phase: candidate-set computation on the simulated GPU.
//!
//! Three strategies, matching Table IV's comparison:
//!
//! * [`filter_signature`] — GSI's encoding-based filter: one warp handles 32
//!   data vertices; the first signature word is compared for label equality,
//!   and survivors stream the remaining words with early exit (§III-A,
//!   §VII-B).
//! * [`filter_label_degree`] — GpSM's pruning: vertex label equality plus a
//!   degree lower bound.
//! * [`filter_label_only`] — GunrockSM's pruning: vertex label equality.

use crate::encode::{encode_vertex, SignatureConfig};
use crate::shared::{FilterCache, FilterDemand};
use crate::table::SignatureTable;
use gsi_gpu_sim::{kernel, DeviceVec, Gpu, Schedule, WARP_SIZE};
use gsi_graph::{Graph, VertexId};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Candidate data vertices for one query vertex, sorted ascending.
///
/// The list is behind an [`Arc`]: the filtering phase is a pure function of
/// the query vertex's label demand, so batched execution shares one list
/// across every query vertex (of any query in the batch) with the same
/// demand instead of recomputing or copying it (see [`crate::shared`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSet {
    /// The query vertex these candidates belong to.
    pub query_vertex: VertexId,
    /// Sorted candidate data-vertex ids (shared across equal demands).
    pub list: Arc<Vec<VertexId>>,
}

impl CandidateSet {
    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether no candidate survived.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Sorted-list membership test (host-side).
    pub fn contains(&self, v: VertexId) -> bool {
        self.list.binary_search(&v).is_ok()
    }
}

/// Smallest candidate-set size across query vertices — the paper's
/// "minimum |C(u)|" quality metric of Tables IV and V.
pub fn min_candidate_size(cands: &[CandidateSet]) -> usize {
    cands.iter().map(|c| c.len()).min().unwrap_or(0)
}

/// Turn a survivor bitmap into sorted candidate lists.
fn bitmap_to_list(bitmap: &[AtomicU32], n: usize) -> Vec<VertexId> {
    let mut out = Vec::new();
    for (w, cell) in bitmap.iter().enumerate() {
        let mut bits = cell.load(Ordering::Relaxed);
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            let v = w * 32 + b;
            if v < n {
                out.push(v as VertexId);
            }
            bits &= bits - 1;
        }
    }
    #[cfg(feature = "debug-invariants")]
    assert_sorted_candidates(&out);
    out
}

/// debug-invariants: candidate lists must hold strictly increasing ids —
/// join-phase binary searches ([`CandidateSet::contains`]) and set
/// intersections silently miss or double-count matches otherwise.
#[cfg(feature = "debug-invariants")]
fn assert_sorted_candidates(list: &[VertexId]) {
    assert!(
        list.windows(2).all(|w| w[0] < w[1]),
        "debug-invariants: candidate list is unsorted or contains duplicates"
    );
}

/// Charge the stores that record a warp's surviving candidates into the
/// output bitmap (scattered single-word writes, coalesced by segment).
fn charge_survivor_writes(gpu: &Gpu, survivors: &[usize]) {
    if survivors.is_empty() {
        return;
    }
    gpu.stats()
        .gst_scatter(survivors.iter().map(|&v| v / 32), 4);
}

/// One signature-filter pass for a single demand: scan the entire table
/// with warp-parallel early-exit containment checks against `qwords`.
fn signature_scan(gpu: &Gpu, table: &SignatureTable, qwords: &[u32]) -> Vec<VertexId> {
    let n = table.n_sigs();
    let wps = table.words_per_sig();
    let n_batches = n.div_ceil(WARP_SIZE);
    let batches: Vec<usize> = (0..n_batches).collect();
    let bitmap: Vec<AtomicU32> = (0..n.div_ceil(32)).map(|_| AtomicU32::new(0)).collect();

    kernel::launch_blocks(gpu, &batches, 32, Schedule::Dynamic, |_ctx, block| {
        let mut lanes: Vec<usize> = Vec::with_capacity(WARP_SIZE);
        for &batch in block {
            let base = batch * WARP_SIZE;
            let end = (base + WARP_SIZE).min(n);
            lanes.clear();
            lanes.extend(base..end);

            // First iteration: read word 0 (the raw vertex label)
            // and compare exactly (§VII-B). The batch is contiguous,
            // so the coalesced-range charge path applies.
            table.charge_warp_word_read_range(gpu, 0, base, end - base);
            lanes.retain(|&v| table.word_host(v, 0) == qwords[0]);

            // Remaining words: bitwise containment with early exit.
            for (w, &qw) in qwords.iter().enumerate().take(wps).skip(1) {
                if lanes.is_empty() {
                    break;
                }
                table.charge_warp_word_read(gpu, w, &lanes);
                gpu.stats().add_idle_lanes((WARP_SIZE - lanes.len()) as u64);
                lanes.retain(|&v| table.word_host(v, w) & qw == qw);
            }

            charge_survivor_writes(gpu, &lanes);
            for &v in &lanes {
                bitmap[v / 32].fetch_or(1 << (v % 32), Ordering::Relaxed);
            }
        }
    });

    bitmap_to_list(&bitmap, n)
}

fn filter_signature_impl(
    gpu: &Gpu,
    table: &SignatureTable,
    query: &Graph,
    cfg: &SignatureConfig,
    cache: Option<&FilterCache>,
) -> Vec<CandidateSet> {
    cfg.validate();
    (0..query.n_vertices() as VertexId)
        .map(|u| {
            let qsig = encode_vertex(query, u, cfg);
            let list = match cache {
                Some(cache) => cache
                    .get_or_compute(FilterDemand::Signature(qsig.words().to_vec()), || {
                        signature_scan(gpu, table, qsig.words())
                    }),
                None => Arc::new(signature_scan(gpu, table, qsig.words())),
            };
            CandidateSet {
                query_vertex: u,
                list,
            }
        })
        .collect()
}

/// GSI's signature filter (§III-A): for query vertex `u`, scan the entire
/// signature table with warp-parallel early-exit containment checks.
///
/// Returns one [`CandidateSet`] per query vertex, in query-vertex order.
pub fn filter_signature(
    gpu: &Gpu,
    table: &SignatureTable,
    query: &Graph,
    cfg: &SignatureConfig,
) -> Vec<CandidateSet> {
    filter_signature_impl(gpu, table, query, cfg, None)
}

/// [`filter_signature`] with a [`FilterCache`]: each distinct encoded
/// signature pays exactly one table scan per cache lifetime; repeats —
/// within this query or across the batch sharing `cache` — reuse the
/// cached list by `Arc`. Output is bit-identical to the uncached filter.
pub fn filter_signature_cached(
    gpu: &Gpu,
    table: &SignatureTable,
    query: &Graph,
    cfg: &SignatureConfig,
    cache: &FilterCache,
) -> Vec<CandidateSet> {
    filter_signature_impl(gpu, table, query, cfg, Some(cache))
}

/// Device-resident per-vertex label and degree arrays for the baseline
/// filters (built once per dataset, offline).
#[derive(Debug)]
pub struct FilterInputs {
    vlabels: DeviceVec<u32>,
    degrees: DeviceVec<u32>,
}

impl FilterInputs {
    /// Upload `g`'s label and degree arrays.
    pub fn build(gpu: &Gpu, g: &Graph) -> Self {
        let vlabels = DeviceVec::from_vec(gpu, g.vlabels().to_vec());
        let degrees = DeviceVec::from_vec(
            gpu,
            (0..g.n_vertices() as VertexId)
                .map(|v| g.degree(v) as u32)
                .collect(),
        );
        Self { vlabels, degrees }
    }

    /// Number of data vertices.
    pub fn n(&self) -> usize {
        self.vlabels.len()
    }
}

/// One predicate-filter pass for a single `(label, min degree)` demand.
fn predicate_scan(
    gpu: &Gpu,
    inputs: &FilterInputs,
    ql: u32,
    qd: u32,
    use_degree: bool,
) -> Vec<VertexId> {
    let n = inputs.n();
    let n_batches = n.div_ceil(WARP_SIZE);
    let batches: Vec<usize> = (0..n_batches).collect();
    let bitmap: Vec<AtomicU32> = (0..n.div_ceil(32)).map(|_| AtomicU32::new(0)).collect();

    kernel::launch_blocks(gpu, &batches, 32, Schedule::Dynamic, |_ctx, block| {
        for &batch in block {
            let base = batch * WARP_SIZE;
            let end = (base + WARP_SIZE).min(n);
            // Coalesced label read for the warp.
            let labels = inputs.vlabels.warp_read(base, end - base);
            let mut lanes: Vec<usize> = (base..end).filter(|&v| labels[v - base] == ql).collect();
            if use_degree && !lanes.is_empty() {
                // Degree read only for surviving lanes.
                gpu.stats().gld_gather(lanes.iter().copied(), 4);
                lanes.retain(|&v| inputs.degrees.as_slice()[v] >= qd);
            }
            gpu.stats().add_work((end - base) as u64);
            charge_survivor_writes(gpu, &lanes);
            for &v in &lanes {
                bitmap[v / 32].fetch_or(1 << (v % 32), Ordering::Relaxed);
            }
        }
    });

    bitmap_to_list(&bitmap, n)
}

fn filter_by_predicate(
    gpu: &Gpu,
    inputs: &FilterInputs,
    query: &Graph,
    use_degree: bool,
    cache: Option<&FilterCache>,
) -> Vec<CandidateSet> {
    (0..query.n_vertices() as VertexId)
        .map(|u| {
            let ql = query.vlabel(u);
            let qd = query.degree(u) as u32;
            let list = match cache {
                Some(cache) => {
                    let demand = if use_degree {
                        FilterDemand::LabelDegree {
                            label: ql,
                            min_degree: qd,
                        }
                    } else {
                        FilterDemand::Label(ql)
                    };
                    cache.get_or_compute(demand, || predicate_scan(gpu, inputs, ql, qd, use_degree))
                }
                None => Arc::new(predicate_scan(gpu, inputs, ql, qd, use_degree)),
            };
            CandidateSet {
                query_vertex: u,
                list,
            }
        })
        .collect()
}

/// GpSM's filter: label equality plus a degree lower bound.
pub fn filter_label_degree(gpu: &Gpu, inputs: &FilterInputs, query: &Graph) -> Vec<CandidateSet> {
    filter_by_predicate(gpu, inputs, query, true, None)
}

/// GunrockSM's filter: label equality only.
pub fn filter_label_only(gpu: &Gpu, inputs: &FilterInputs, query: &Graph) -> Vec<CandidateSet> {
    filter_by_predicate(gpu, inputs, query, false, None)
}

/// [`filter_label_degree`] sharing passes through a [`FilterCache`].
pub fn filter_label_degree_cached(
    gpu: &Gpu,
    inputs: &FilterInputs,
    query: &Graph,
    cache: &FilterCache,
) -> Vec<CandidateSet> {
    filter_by_predicate(gpu, inputs, query, true, Some(cache))
}

/// [`filter_label_only`] sharing passes through a [`FilterCache`].
pub fn filter_label_only_cached(
    gpu: &Gpu,
    inputs: &FilterInputs,
    query: &Graph,
    cache: &FilterCache,
) -> Vec<CandidateSet> {
    filter_by_predicate(gpu, inputs, query, false, Some(cache))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Layout;
    use gsi_gpu_sim::DeviceConfig;
    use gsi_graph::generate::{barabasi_albert, LabelModel};
    use gsi_graph::query_gen::random_walk_query;
    use gsi_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gpu() -> Gpu {
        Gpu::new(DeviceConfig::test_device())
    }

    fn data_graph(seed: u64) -> Graph {
        let model = LabelModel::zipf(5, 5, 0.8);
        barabasi_albert(300, 3, &model, &mut StdRng::seed_from_u64(seed))
    }

    /// Brute-force ground truth: v matches u if labels equal and for every
    /// (edge label, neighbor label) pair multiset requirement of u, v has at
    /// least as many.
    fn exact_candidates(g: &Graph, q: &Graph, u: VertexId) -> Vec<VertexId> {
        use std::collections::HashMap;
        let mut need: HashMap<(u32, u32), usize> = HashMap::new();
        for &(nbr, el) in q.neighbors(u) {
            *need.entry((el, q.vlabel(nbr))).or_insert(0) += 1;
        }
        (0..g.n_vertices() as VertexId)
            .filter(|&v| {
                if g.vlabel(v) != q.vlabel(u) {
                    return false;
                }
                let mut have: HashMap<(u32, u32), usize> = HashMap::new();
                for &(nbr, el) in g.neighbors(v) {
                    *have.entry((el, g.vlabel(nbr))).or_insert(0) += 1;
                }
                need.iter()
                    .all(|(k, &n)| have.get(k).copied().unwrap_or(0) >= n)
            })
            .collect()
    }

    #[test]
    fn signature_filter_is_sound() {
        // Every exact candidate must survive the signature filter
        // (hash groups can only over-approximate).
        let g = data_graph(1);
        let q = random_walk_query(&g, 5, &mut StdRng::seed_from_u64(2)).unwrap();
        let cfg = SignatureConfig::default();
        let gpu = gpu();
        let table = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst);
        let cands = filter_signature(&gpu, &table, &q, &cfg);
        for u in 0..q.n_vertices() as u32 {
            let exact = exact_candidates(&g, &q, u);
            for v in exact {
                assert!(
                    cands[u as usize].contains(v),
                    "sound filter must keep v={v} for u={u}"
                );
            }
        }
    }

    #[test]
    fn signature_filter_prunes_more_than_label_filters() {
        let g = data_graph(3);
        let q = random_walk_query(&g, 6, &mut StdRng::seed_from_u64(4)).unwrap();
        let cfg = SignatureConfig::default();
        let gpu = gpu();
        let table = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst);
        let inputs = FilterInputs::build(&gpu, &g);
        let sig = filter_signature(&gpu, &table, &q, &cfg);
        let ld = filter_label_degree(&gpu, &inputs, &q);
        let lo = filter_label_only(&gpu, &inputs, &q);
        // Pointwise: signature ⊆ label+degree ⊆ label-only.
        for u in 0..q.n_vertices() as usize {
            assert!(sig[u].len() <= ld[u].len(), "u={u}");
            assert!(ld[u].len() <= lo[u].len(), "u={u}");
            for &v in sig[u].list.iter() {
                assert!(lo[u].contains(v));
            }
        }
        assert!(min_candidate_size(&sig) <= min_candidate_size(&ld));
    }

    #[test]
    fn label_degree_filter_matches_definition() {
        let g = data_graph(7);
        let q = random_walk_query(&g, 4, &mut StdRng::seed_from_u64(8)).unwrap();
        let gpu = gpu();
        let inputs = FilterInputs::build(&gpu, &g);
        let got = filter_label_degree(&gpu, &inputs, &q);
        for u in 0..q.n_vertices() as u32 {
            let expect: Vec<u32> = (0..g.n_vertices() as u32)
                .filter(|&v| g.vlabel(v) == q.vlabel(u) && g.degree(v) >= q.degree(u))
                .collect();
            assert_eq!(*got[u as usize].list, expect);
        }
    }

    #[test]
    fn larger_n_strengthens_pruning_in_aggregate() {
        // Table V: growing N improves pruning. A single query can fluctuate
        // (different N remaps every hash group), so assert the aggregate
        // trend over a batch of queries, as the paper's averages do.
        let g = data_graph(11);
        let mut rng = StdRng::seed_from_u64(12);
        let queries: Vec<Graph> = (0..10)
            .map(|_| random_walk_query(&g, 6, &mut rng).unwrap())
            .collect();
        let gpu = gpu();
        let total_for = |n: usize| -> usize {
            let cfg = SignatureConfig::with_n(n);
            let table = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst);
            queries
                .iter()
                .map(|q| {
                    filter_signature(&gpu, &table, q, &cfg)
                        .iter()
                        .map(|c| c.len())
                        .sum::<usize>()
                })
                .sum()
        };
        let small = total_for(64);
        let large = total_for(512);
        assert!(
            large <= small,
            "N=512 should prune at least as hard in aggregate: {large} vs {small}"
        );
    }

    #[test]
    fn column_first_costs_fewer_transactions_than_row_first() {
        let g = data_graph(13);
        let q = random_walk_query(&g, 4, &mut StdRng::seed_from_u64(14)).unwrap();
        let cfg = SignatureConfig::default();
        let gpu1 = gpu();
        let col = SignatureTable::build(&gpu1, &g, &cfg, Layout::ColumnFirst);
        gpu1.reset_stats();
        let c1 = filter_signature(&gpu1, &col, &q, &cfg);
        let col_gld = gpu1.stats().snapshot().gld_transactions;

        let gpu2 = gpu();
        let row = SignatureTable::build(&gpu2, &g, &cfg, Layout::RowFirst);
        gpu2.reset_stats();
        let c2 = filter_signature(&gpu2, &row, &q, &cfg);
        let row_gld = gpu2.stats().snapshot().gld_transactions;

        assert_eq!(c1, c2, "layout must not change results");
        assert!(
            col_gld < row_gld,
            "coalesced layout should cost less: {col_gld} vs {row_gld}"
        );
    }

    #[test]
    fn empty_candidates_for_impossible_label() {
        let g = data_graph(15);
        let mut qb = GraphBuilder::new();
        let u0 = qb.add_vertex(999); // label absent from data
        let u1 = qb.add_vertex(0);
        qb.add_edge(u0, u1, 0);
        let q = qb.build();
        let cfg = SignatureConfig::default();
        let gpu = gpu();
        let table = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst);
        let cands = filter_signature(&gpu, &table, &q, &cfg);
        assert!(cands[0].is_empty());
        assert_eq!(min_candidate_size(&cands), 0);
    }

    #[test]
    fn cached_filter_is_bit_identical_and_charges_each_demand_once() {
        let g = data_graph(21);
        let cfg = SignatureConfig::default();
        let gpu1 = gpu();
        let table1 = SignatureTable::build(&gpu1, &g, &cfg, Layout::ColumnFirst);
        let q = random_walk_query(&g, 5, &mut StdRng::seed_from_u64(22)).unwrap();

        // Uncached reference, twice back to back: 2x the device cost.
        gpu1.reset_stats();
        let solo = filter_signature(&gpu1, &table1, &q, &cfg);
        let solo_gld = gpu1.stats().snapshot().gld_transactions;
        let again = filter_signature(&gpu1, &table1, &q, &cfg);
        assert_eq!(solo, again);

        // Cached, same two queries through one cache: identical lists, and
        // the second pass reuses every demand instead of re-scanning.
        let gpu2 = gpu();
        let table2 = SignatureTable::build(&gpu2, &g, &cfg, Layout::ColumnFirst);
        let cache = crate::shared::FilterCache::new();
        gpu2.reset_stats();
        let first = filter_signature_cached(&gpu2, &table2, &q, &cfg, &cache);
        let after_first = gpu2.stats().snapshot().gld_transactions;
        let second = filter_signature_cached(&gpu2, &table2, &q, &cfg, &cache);
        let after_second = gpu2.stats().snapshot().gld_transactions;

        for (a, b) in solo.iter().zip(&first) {
            assert_eq!(a.query_vertex, b.query_vertex);
            assert_eq!(a.list, b.list, "cached output must be bit-identical");
        }
        for (a, b) in first.iter().zip(&second) {
            assert!(Arc::ptr_eq(&a.list, &b.list), "repeat shares the Arc");
        }
        assert!(after_first <= solo_gld, "dedup can only reduce device work");
        assert_eq!(after_second, after_first, "reuse charges nothing");
        assert_eq!(cache.demands_reused(), q.n_vertices() as u64);
    }

    #[test]
    fn candidate_lists_are_sorted_unique() {
        let g = data_graph(17);
        let q = random_walk_query(&g, 5, &mut StdRng::seed_from_u64(18)).unwrap();
        let cfg = SignatureConfig::default();
        let gpu = gpu();
        let table = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst);
        for c in filter_signature(&gpu, &table, &q, &cfg) {
            assert!(c.list.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[cfg(feature = "debug-invariants")]
    #[test]
    #[should_panic(expected = "debug-invariants: candidate list is unsorted")]
    fn sanitizer_catches_unsorted_candidates() {
        assert_sorted_candidates(&[3, 1, 2]);
    }

    #[cfg(feature = "debug-invariants")]
    #[test]
    #[should_panic(expected = "debug-invariants: candidate list is unsorted")]
    fn sanitizer_catches_duplicate_candidates() {
        assert_sorted_candidates(&[1, 2, 2, 3]);
    }
}
