//! Signature encoding (§III-A, Fig. 8(a)).

use gsi_graph::Graph;
use gsi_graph::VertexId;

/// Parameters of the signature encoding.
///
/// `N` must be a multiple of 32 and at most 512 (§VII-B: memory-bandwidth
/// alignment and GPU-memory budget); `K` is fixed at 32 because the paper
/// stores the raw vertex-label value in the first word to enable the exact
/// first-word comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureConfig {
    /// Total signature length in bits (default 512).
    pub n_bits: usize,
    /// Vertex-label bits (fixed 32).
    pub k_bits: usize,
}

impl Default for SignatureConfig {
    fn default() -> Self {
        Self {
            n_bits: 512,
            k_bits: 32,
        }
    }
}

impl SignatureConfig {
    /// A config with `n_bits` total and the fixed 32 label bits.
    pub fn with_n(n_bits: usize) -> Self {
        Self { n_bits, k_bits: 32 }
    }

    /// Validate the constraints of §VII-B.
    pub fn validate(&self) {
        assert!(
            self.n_bits.is_multiple_of(32),
            "N must be divisible by 32 to utilize memory bandwidth"
        );
        assert!(self.n_bits <= 512, "N must not exceed 512 (GPU memory)");
        assert_eq!(self.k_bits, 32, "K is fixed at 32 (raw label storage)");
        assert!(self.n_bits > self.k_bits, "N must exceed K");
    }

    /// Signature length in 32-bit words.
    pub fn words(&self) -> usize {
        self.n_bits / 32
    }

    /// Number of 2-bit groups encoding (edge label, neighbor label) pairs.
    pub fn n_groups(&self) -> usize {
        (self.n_bits - self.k_bits) / 2
    }
}

/// A single vertex signature: `words()[0]` is the raw vertex label; the
/// remaining words hold the 2-bit groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    words: Vec<u32>,
}

impl Signature {
    /// The backing words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The encoded vertex label (first `K = 32` bits).
    pub fn vertex_label(&self) -> u32 {
        self.words[0]
    }

    /// The filtering test: `v` can match `u` iff labels are equal and every
    /// group bit set in `S(u)` is also set in `S(v)` — i.e.
    /// `S(v) & S(u) = S(u)` (§III-A), with the first word upgraded to an
    /// exact comparison (§VII-B).
    pub fn may_match(&self, query: &Signature) -> bool {
        debug_assert_eq!(self.words.len(), query.words.len());
        if self.words[0] != query.words[0] {
            return false;
        }
        self.words[1..]
            .iter()
            .zip(&query.words[1..])
            .all(|(&sv, &su)| sv & su == su)
    }
}

/// Hash an `(edge label, neighbor label)` pair to a 2-bit group index.
#[inline]
fn pair_group(edge_label: u32, neighbor_label: u32, n_groups: usize) -> usize {
    let key = (u64::from(edge_label) << 32) | u64::from(neighbor_label);
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 24) % n_groups as u64) as usize
}

/// Encode the signature of vertex `v` in graph `g` (Fig. 8(a)).
///
/// Group states: `00` — no pair hashed here; `01` — exactly one pair;
/// `11` — more than one pair. Containment of these states under `&` yields
/// the pruning rule's soundness: a data vertex with *at least as many* pairs
/// in every group as the query vertex passes.
pub fn encode_vertex(g: &Graph, v: VertexId, cfg: &SignatureConfig) -> Signature {
    cfg.validate();
    let n_groups = cfg.n_groups();
    let mut words = vec![0u32; cfg.words()];
    words[0] = g.vlabel(v);
    for &(nbr, el) in g.neighbors(v) {
        let grp = pair_group(el, g.vlabel(nbr), n_groups);
        // Bit position of the group within the post-label region.
        let bit = 32 + 2 * grp;
        let word = bit / 32;
        let lo = bit % 32;
        let cur = (words[word] >> lo) & 0b11;
        let next = match cur {
            0b00 => 0b01,
            0b01 => 0b11,
            other => other,
        };
        words[word] = (words[word] & !(0b11 << lo)) | (next << lo);
    }
    Signature { words }
}

/// Encode every vertex of `g`.
pub fn encode_all(g: &Graph, cfg: &SignatureConfig) -> Vec<Signature> {
    (0..g.n_vertices() as VertexId)
        .map(|v| encode_vertex(g, v, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsi_graph::GraphBuilder;

    fn small_graph() -> Graph {
        // v0(A=0) –a(0)– v1(B=1); v0 –b(1)– v2(C=2); v0 –a– v3(B)
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(0);
        let v1 = b.add_vertex(1);
        let v2 = b.add_vertex(2);
        let v3 = b.add_vertex(1);
        b.add_edge(v0, v1, 0);
        b.add_edge(v0, v2, 1);
        b.add_edge(v0, v3, 0);
        b.build()
    }

    #[test]
    fn config_defaults_and_words() {
        let cfg = SignatureConfig::default();
        cfg.validate();
        assert_eq!(cfg.words(), 16);
        assert_eq!(cfg.n_groups(), 240);
        assert_eq!(SignatureConfig::with_n(64).n_groups(), 16);
    }

    #[test]
    #[should_panic(expected = "divisible by 32")]
    fn invalid_n_rejected() {
        SignatureConfig {
            n_bits: 100,
            k_bits: 32,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "not exceed 512")]
    fn oversized_n_rejected() {
        SignatureConfig {
            n_bits: 1024,
            k_bits: 32,
        }
        .validate();
    }

    #[test]
    fn first_word_is_raw_label() {
        let g = small_graph();
        let cfg = SignatureConfig::default();
        for v in 0..4u32 {
            assert_eq!(encode_vertex(&g, v, &cfg).vertex_label(), g.vlabel(v));
        }
    }

    #[test]
    fn duplicate_pairs_saturate_to_11() {
        let g = small_graph();
        let cfg = SignatureConfig::default();
        // v0 has two (a, B) pairs: that group must read 11.
        let s = encode_vertex(&g, 0, &cfg);
        let grp = pair_group(0, 1, cfg.n_groups());
        let bit = 32 + 2 * grp;
        let val = (s.words()[bit / 32] >> (bit % 32)) & 0b11;
        assert_eq!(val, 0b11);
        // The single (b, C) pair must read 01.
        let grp = pair_group(1, 2, cfg.n_groups());
        let bit = 32 + 2 * grp;
        let val = (s.words()[bit / 32] >> (bit % 32)) & 0b11;
        assert_eq!(val, 0b01);
    }

    #[test]
    fn may_match_requires_label_equality() {
        let g = small_graph();
        let cfg = SignatureConfig::default();
        let s0 = encode_vertex(&g, 0, &cfg);
        let s1 = encode_vertex(&g, 1, &cfg);
        assert!(!s0.may_match(&s1));
        assert!(s0.may_match(&s0));
    }

    #[test]
    fn subset_neighborhood_passes_superset_fails() {
        // Query u: one (a,B) edge. Data v0: two (a,B) + one (b,C) ⇒ S(v0)
        // covers S(u). Conversely v1 (neighborhood {(a,A)}) cannot cover u
        // with label B... construct explicit query graphs.
        let mut qb = GraphBuilder::new();
        let u0 = qb.add_vertex(0);
        let u1 = qb.add_vertex(1);
        qb.add_edge(u0, u1, 0);
        let q = qb.build();
        let cfg = SignatureConfig::default();
        let g = small_graph();
        let su0 = encode_vertex(&q, u0, &cfg);
        let sv0 = encode_vertex(&g, 0, &cfg);
        assert!(sv0.may_match(&su0), "v0 has (a,B) twice, covers query");

        // A query asking for both (a,B) and (a,A) cannot be covered by v0.
        let mut qb2 = GraphBuilder::new();
        let w0 = qb2.add_vertex(0);
        let w1 = qb2.add_vertex(1);
        let w2 = qb2.add_vertex(0);
        qb2.add_edge(w0, w1, 0);
        qb2.add_edge(w0, w2, 0);
        let q2 = qb2.build();
        let sw0 = encode_vertex(&q2, w0, &cfg);
        // Unless (a,A) hashes into the same group as (a,B) (with N=512 the
        // chance is tiny), v0 lacks the (a,A) group bits.
        let ga = pair_group(0, 0, cfg.n_groups());
        let gb = pair_group(0, 1, cfg.n_groups());
        if ga != gb {
            assert!(!sv0.may_match(&sw0));
        }
    }

    #[test]
    fn soundness_never_prunes_true_match_randomized() {
        // For random graphs and random query vertices: if the neighborhood
        // pair multiset of u is a sub-multiset of v's (and labels match),
        // then may_match(v, u) must hold — hashing can only lose precision,
        // never soundness.
        let cfg = SignatureConfig::with_n(64); // small N stresses collisions
        for seed in 0..10u64 {
            let g = {
                use gsi_graph::generate::{barabasi_albert, LabelModel};
                use rand::rngs::StdRng;
                use rand::SeedableRng;
                let model = LabelModel::zipf(4, 4, 1.0);
                barabasi_albert(60, 2, &model, &mut StdRng::seed_from_u64(seed))
            };
            let sigs = encode_all(&g, &cfg);
            for v in 0..g.n_vertices() as u32 {
                // A vertex always covers itself.
                assert!(sigs[v as usize].may_match(&sigs[v as usize]));
            }
        }
    }

    #[test]
    fn isolated_vertex_signature_is_label_only() {
        let mut b = GraphBuilder::new();
        b.add_vertex(7);
        let g = b.build();
        let cfg = SignatureConfig::default();
        let s = encode_vertex(&g, 0, &cfg);
        assert_eq!(s.vertex_label(), 7);
        assert!(s.words()[1..].iter().all(|&w| w == 0));
    }
}
