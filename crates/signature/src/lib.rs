//! # gsi-signature — vertex signatures and the GSI filtering phase
//!
//! Implements §III-A of the GSI paper: every vertex's neighborhood structure
//! is encoded offline into a length-`N` bitvector signature whose first
//! `K = 32` bits store the raw vertex label and whose remaining bits are
//! 2-bit hash groups over the vertex's `(edge label, neighbor label)` pairs.
//! A data vertex `v` can only match a query vertex `u` if `v`'s label equals
//! `u`'s and `S(v) & S(u) = S(u)` on the group bits.
//!
//! The signature table lives in simulated global memory in either row-first
//! or **column-first** layout; the paper's filtering kernel reads it
//! column-first so that a warp's 32 lane reads of the same signature word
//! coalesce into one 128-byte transaction (Fig. 8(c)/(d)).
//!
//! Baseline filters used in Table IV — GpSM's label + degree check and
//! GunrockSM's label-only check — are provided in [`filter`] as well.

pub mod encode;
pub mod filter;
pub mod selectivity;
pub mod shared;
pub mod table;

pub use encode::{Signature, SignatureConfig};
pub use filter::{
    filter_label_degree, filter_label_degree_cached, filter_label_only, filter_label_only_cached,
    filter_signature, filter_signature_cached, min_candidate_size, CandidateSet,
};
pub use selectivity::{estimate_candidates, pass_fraction, GroupDensity};
pub use shared::{FilterCache, FilterDemand};
pub use table::{Layout, SignatureTable};
