//! Cross-query shared filtering: candidate lists keyed by *label demand*.
//!
//! The filtering phase is a pure function of one query vertex's demand on
//! the data graph — for the signature filter the encoded signature words,
//! for the baseline filters the vertex label (plus a degree bound). Two
//! query vertices with the same demand always produce the same candidate
//! list, whether they belong to one query or to different queries hitting
//! the same prepared graph. A [`FilterCache`] memoizes that function for
//! the lifetime of a batch: the first occurrence of a demand pays the full
//! table scan (and charges the device ledger once), every later occurrence
//! shares the resulting list by [`Arc`].
//!
//! The cache is scoped by construction, not by key: callers create one per
//! `(graph, epoch)` batch, so entries can never leak across graph states.

use gsi_graph::VertexId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What one query vertex asks of the data graph — the memoization key of
/// the filtering phase. Variants mirror the three filter strategies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FilterDemand {
    /// GSI's signature filter: the query vertex's full encoded signature
    /// (word 0 is the raw label, the rest are 2-bit hash groups).
    Signature(Vec<u32>),
    /// GpSM's filter: label equality plus a degree lower bound.
    LabelDegree {
        /// Required vertex label.
        label: u32,
        /// Minimum degree a candidate must have.
        min_degree: u32,
    },
    /// GunrockSM's filter: label equality only.
    Label(u32),
}

/// Memoized candidate lists for one batch of queries against one prepared
/// graph. Thread-safe; computation runs under the lock so each distinct
/// demand is computed (and charged to the device ledger) exactly once.
#[derive(Debug, Default)]
pub struct FilterCache {
    entries: Mutex<HashMap<FilterDemand, Arc<Vec<VertexId>>>>,
    computed: AtomicU64,
    reused: AtomicU64,
}

impl FilterCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The candidate list for `demand`: the cached copy when one exists,
    /// otherwise `compute()`'s result, stored for every later occurrence.
    pub fn get_or_compute(
        &self,
        demand: FilterDemand,
        compute: impl FnOnce() -> Vec<VertexId>,
    ) -> Arc<Vec<VertexId>> {
        let mut entries = self.entries.lock();
        if let Some(hit) = entries.get(&demand) {
            self.reused.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let list = Arc::new(compute());
        self.computed.fetch_add(1, Ordering::Relaxed);
        entries.insert(demand, Arc::clone(&list));
        list
    }

    /// Distinct demands computed (each paid one full filter pass).
    pub fn demands_computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Demands served from the cache (each skipped a full filter pass).
    pub fn demands_reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Number of distinct demands held.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_occurrence_computes_later_ones_share() {
        let cache = FilterCache::new();
        let mut calls = 0usize;
        let a = cache.get_or_compute(FilterDemand::Label(7), || {
            calls += 1;
            vec![1, 2, 3]
        });
        let b = cache.get_or_compute(FilterDemand::Label(7), || {
            calls += 1;
            vec![9, 9, 9]
        });
        assert_eq!(calls, 1, "second occurrence must not recompute");
        assert!(Arc::ptr_eq(&a, &b), "the list is shared, not copied");
        assert_eq!(*a, vec![1, 2, 3]);
        assert_eq!(cache.demands_computed(), 1);
        assert_eq!(cache.demands_reused(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_demands_do_not_collide() {
        let cache = FilterCache::new();
        cache.get_or_compute(FilterDemand::Label(1), || vec![1]);
        cache.get_or_compute(
            FilterDemand::LabelDegree {
                label: 1,
                min_degree: 0,
            },
            || vec![2],
        );
        cache.get_or_compute(FilterDemand::Signature(vec![1]), || vec![3]);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.demands_computed(), 3);
        assert_eq!(cache.demands_reused(), 0);
    }
}
