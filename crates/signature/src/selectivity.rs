//! Candidate-selectivity estimation from encoded signatures.
//!
//! The signature filter (§III-A) passes a data vertex `v` for query vertex
//! `u` when the labels agree and every 2-bit group set in `S(u)` is
//! contained in `S(v)`. Containment has a clean probabilistic reading: a
//! query group in state `01` ("one pair hashed here") is contained when
//! the data group is occupied at all, one in state `11` ("several pairs")
//! only when the data group is saturated too.
//!
//! The estimator keeps the **per-group empirical marginals** of the whole
//! table: for every one of the `G` hash groups, the fraction of data
//! signatures with that group occupied / saturated. This matters because
//! group occupancy is anything but uniform — the groups a real query
//! demands are the popular `(edge label, neighbor label)` pairs, and those
//! very groups are occupied in a large fraction of data signatures. A
//! model built on *average* occupancy (uniform-hashing style) would
//! underestimate survivors by orders of magnitude; the per-group marginals
//! ask "how common is *this* demanded pair", which is the quantity the
//! filter actually tests. Independence across demanded groups is still
//! assumed (pairs co-occurring at hubs are positively correlated, so the
//! product is a mild underestimate — conservative for join planning).
//!
//! This is what a cost-based planner needs when exact candidate sets are
//! not available: the serving layer re-costs cached join orders at epoch
//! publication (no query is in flight, so no filter has run) from the
//! graph-statistics catalog plus these estimates. When exact candidate
//! sets *are* in hand they are strictly better — the estimator is the
//! fallback, not the replacement.

use crate::encode::Signature;
use crate::table::SignatureTable;

/// Per-group occupancy marginals of a signature table: for each 2-bit hash
/// group, how many signatures have it occupied (`01` or `11`) and how many
/// have it saturated (`11`). The sufficient statistic for estimating
/// containment-pass fractions group by group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDensity {
    /// Signatures profiled.
    n_sigs: u64,
    /// Per group: signatures with the group occupied (state `01` or `11`).
    set_counts: Vec<u64>,
    /// Per group: signatures with the group saturated (state `11`).
    many_counts: Vec<u64>,
}

impl GroupDensity {
    /// Number of hash groups profiled (`G = (N - K) / 2`).
    pub fn n_groups(&self) -> usize {
        self.set_counts.len()
    }

    /// Fraction of signatures with group `g` occupied.
    pub fn occupied_fraction(&self, g: usize) -> f64 {
        if self.n_sigs == 0 {
            return 0.0;
        }
        self.set_counts[g] as f64 / self.n_sigs as f64
    }

    /// Fraction of signatures with group `g` saturated (several pairs).
    pub fn saturated_fraction(&self, g: usize) -> f64 {
        if self.n_sigs == 0 {
            return 0.0;
        }
        self.many_counts[g] as f64 / self.n_sigs as f64
    }

    /// Mean occupied fraction across groups (scalar summary for reports).
    pub fn mean_occupancy(&self) -> f64 {
        if self.set_counts.is_empty() || self.n_sigs == 0 {
            return 0.0;
        }
        let total: u64 = self.set_counts.iter().sum();
        total as f64 / (self.n_sigs as f64 * self.set_counts.len() as f64)
    }
}

/// Iterate a signature's demanded groups as `(group index, state)` with
/// state `0b01` or `0b11`.
fn demanded_groups(sig: &Signature) -> impl Iterator<Item = (usize, u32)> + '_ {
    sig.words()[1..].iter().enumerate().flat_map(|(wi, &w)| {
        (0..16).filter_map(move |pos| {
            let state = (w >> (2 * pos)) & 0b11;
            (state != 0).then_some((wi * 16 + pos, state))
        })
    })
}

impl SignatureTable {
    /// Collect the per-group occupancy marginals of the whole table
    /// (host-side read, no device charge). `O(n_sigs × words_per_sig)`.
    pub fn group_density(&self) -> GroupDensity {
        let n_groups = self.words_per_sig().saturating_sub(1) * 16;
        let mut set_counts = vec![0u64; n_groups];
        let mut many_counts = vec![0u64; n_groups];
        for sig in 0..self.n_sigs() {
            for w in 1..self.words_per_sig() {
                let mut bits = self.word_host(sig, w);
                let mut pos = 0usize;
                while bits != 0 {
                    let state = bits & 0b11;
                    if state != 0 {
                        let g = (w - 1) * 16 + pos;
                        set_counts[g] += 1;
                        if state != 0b01 {
                            many_counts[g] += 1;
                        }
                    }
                    bits >>= 2;
                    pos += 1;
                }
            }
        }
        GroupDensity {
            n_sigs: self.n_sigs() as u64,
            set_counts,
            many_counts,
        }
    }
}

/// Estimated fraction of *same-label* data vertices that pass the group
/// containment test for `query_sig`, in `[0, 1]`: the product over the
/// query's demanded groups of that group's empirical containment marginal.
pub fn pass_fraction(query_sig: &Signature, density: &GroupDensity) -> f64 {
    let mut p = 1.0f64;
    for (g, state) in demanded_groups(query_sig) {
        if g >= density.n_groups() {
            // Differently-sized encodings share no group space; no signal.
            continue;
        }
        p *= if state == 0b01 {
            density.occupied_fraction(g)
        } else {
            density.saturated_fraction(g)
        };
        if p == 0.0 {
            break;
        }
    }
    p.clamp(0.0, 1.0)
}

/// Estimated candidate count for a query vertex: the label class size
/// (e.g. `GraphStats::vlabel_count`) damped by the signature's estimated
/// pass fraction.
pub fn estimate_candidates(
    query_sig: &Signature,
    n_label_vertices: u64,
    density: &GroupDensity,
) -> f64 {
    n_label_vertices as f64 * pass_fraction(query_sig, density)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_vertex, SignatureConfig};
    use crate::filter::filter_signature;
    use crate::table::Layout;
    use gsi_gpu_sim::{DeviceConfig, Gpu};
    use gsi_graph::generate::{barabasi_albert, LabelModel};
    use gsi_graph::query_gen::random_walk_query;
    use gsi_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gpu() -> Gpu {
        Gpu::new(DeviceConfig::test_device())
    }

    fn data() -> gsi_graph::Graph {
        let model = LabelModel::zipf(4, 4, 0.8);
        barabasi_albert(400, 3, &model, &mut StdRng::seed_from_u64(9))
    }

    #[test]
    fn density_summarizes_the_table() {
        let g = data();
        let cfg = SignatureConfig::default();
        let gpu = gpu();
        let table = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst);
        let d = table.group_density();
        assert_eq!(d.n_groups(), cfg.n_groups());
        let occ = d.mean_occupancy();
        assert!(
            occ > 0.0 && occ < 1.0,
            "real graph: partial occupancy {occ}"
        );
        for g_idx in 0..d.n_groups() {
            assert!(d.saturated_fraction(g_idx) <= d.occupied_fraction(g_idx));
        }
    }

    #[test]
    fn empty_table_density() {
        let g = GraphBuilder::new().build();
        let cfg = SignatureConfig::default();
        let gpu = gpu();
        let d = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst).group_density();
        assert_eq!(d.mean_occupancy(), 0.0);
        // Any demand against an empty table estimates zero survivors.
        let mut qb = GraphBuilder::new();
        let u0 = qb.add_vertex(0);
        let u1 = qb.add_vertex(1);
        qb.add_edge(u0, u1, 0);
        let q = qb.build();
        assert_eq!(pass_fraction(&encode_vertex(&q, 0, &cfg), &d), 0.0);
    }

    #[test]
    fn more_constrained_signatures_estimate_smaller_fractions() {
        let g = data();
        let cfg = SignatureConfig::default();
        let gpu = gpu();
        let table = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst);
        let d = table.group_density();

        // An isolated query vertex constrains nothing: fraction 1.
        let mut qb = GraphBuilder::new();
        qb.add_vertex(0);
        let isolated = qb.build();
        assert_eq!(pass_fraction(&encode_vertex(&isolated, 0, &cfg), &d), 1.0);

        // A star center with distinct neighbor demands is tighter, and
        // grows (weakly) tighter as arms are added.
        let mut qb = GraphBuilder::new();
        let hub = qb.add_vertex(0);
        for i in 0..3 {
            let leaf = qb.add_vertex(1 + i);
            qb.add_edge(hub, leaf, i);
        }
        let star = qb.build();
        let f3 = pass_fraction(&encode_vertex(&star, hub, &cfg), &d);
        assert!(f3 < 1.0);

        let mut qb = GraphBuilder::new();
        let hub = qb.add_vertex(0);
        let leaf = qb.add_vertex(1);
        qb.add_edge(hub, leaf, 0);
        let single = qb.build();
        let f1 = pass_fraction(&encode_vertex(&single, hub, &cfg), &d);
        assert!(f3 <= f1, "more demands cannot loosen the estimate");
    }

    #[test]
    fn estimates_track_actual_candidate_counts_in_aggregate() {
        // The estimator is a model, not an oracle — assert it is *useful*:
        // across a query batch, the aggregate estimated count stays within
        // a generous multiplicative band of the filter's actual counts, and
        // never exceeds the label class size.
        let g = data();
        let cfg = SignatureConfig::default();
        let gpu = gpu();
        let table = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst);
        let d = table.group_density();
        let stats = gsi_graph::GraphStats::build(&g);
        let mut rng = StdRng::seed_from_u64(33);
        let mut est_total = 0.0f64;
        let mut act_total = 0.0f64;
        for _ in 0..8 {
            let q = random_walk_query(&g, 5, &mut rng).unwrap();
            let cands = filter_signature(&gpu, &table, &q, &cfg);
            for u in 0..q.n_vertices() as u32 {
                let sig = encode_vertex(&q, u, &cfg);
                let est = estimate_candidates(&sig, stats.vlabel_count(q.vlabel(u)), &d);
                assert!(est >= 0.0);
                assert!(
                    est <= stats.vlabel_count(q.vlabel(u)) as f64 + 1e-9,
                    "estimate cannot exceed the label class"
                );
                est_total += est;
                act_total += cands[u as usize].len() as f64;
            }
        }
        assert!(act_total > 0.0);
        let ratio = est_total / act_total;
        assert!(
            (0.1..=10.0).contains(&ratio),
            "aggregate estimate off by more than 10x: {ratio}"
        );
    }
}
