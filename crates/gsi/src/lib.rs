//! # gsi — GPU-friendly Subgraph Isomorphism
//!
//! A from-scratch Rust reproduction of *GSI: GPU-friendly Subgraph
//! Isomorphism* (Zeng, Zou, Özsu, Hu, Zhang — ICDE 2020, arXiv:1906.03420),
//! running on a software GPU execution-model simulator so that the paper's
//! memory-hierarchy arguments (128-byte transactions, coalescing, shared
//! memory, warp-centric kernels) are exercised and measured without GPU
//! hardware.
//!
//! This facade re-exports the whole stack:
//!
//! * [`sim`] — the GPU execution model (warps, blocks, transactions, GLD/GST
//!   accounting).
//! * [`graph`] — labeled graphs, generators, random-walk queries, and the
//!   storage structures CSR / Basic / Compressed / **PCSR**.
//! * [`signature`] — the vertex-signature filtering phase.
//! * [`engine`] — the GSI engine: Prealloc-Combine joins, GPU-friendly set
//!   operations, load balancing, duplicate removal.
//! * [`baselines`] — GpSM, GunrockSM, VF2, VF3-like, CFL-like.
//! * [`datasets`] — Table III dataset stand-ins.
//! * [`service`] — the concurrent query-serving subsystem: a graph catalog
//!   sharing prepared graphs across queries with epoch-versioned in-place
//!   updates, a bounded-queue scheduler with worker threads, deadlines and
//!   admission control, a plan cache keyed by canonical query hashes, and
//!   aggregated serving statistics with per-epoch attribution (see the
//!   `gsi-service` crate docs for the architecture, and the repository
//!   `README.md` for the crate map and the "Updating graphs in place"
//!   walkthrough).
//! * [`api`] — the transport-neutral request/response vocabulary:
//!   builder-style [`prelude::QueryRequest`], consolidated
//!   [`prelude::ApiError`] with stable wire discriminants, typed
//!   [`prelude::Completion`], and the hand-rolled wire-encoding helpers.
//! * [`server`] — the TCP front-end: versioned binary framing, per-tenant
//!   fair queueing with quota backpressure, streamed match tables,
//!   graceful drain, and the matching blocking client (see the repository
//!   `README.md`'s "Serving over the network" and `docs/PROTOCOL.md`).
//!
//! ## Quickstart
//!
//! ```
//! use gsi::prelude::*;
//!
//! // A labeled data graph…
//! let mut b = GraphBuilder::new();
//! let alice = b.add_vertex(0);
//! let bob = b.add_vertex(1);
//! let carol = b.add_vertex(1);
//! b.add_edge(alice, bob, 0);
//! b.add_edge(alice, carol, 0);
//! b.add_edge(bob, carol, 1);
//! let data = b.build();
//!
//! // …a pattern to search for…
//! let mut qb = GraphBuilder::new();
//! let u = qb.add_vertex(0);
//! let w = qb.add_vertex(1);
//! qb.add_edge(u, w, 0);
//! let query = qb.build();
//!
//! // …and the GSI engine. Planning is fallible (typed `PlanError` on
//! // empty/disconnected patterns — no panic), hence the `expect`.
//! let engine = GsiEngine::new(GsiConfig::gsi_opt());
//! let prepared = engine.prepare(&data);
//! let out = engine.query(&data, &prepared, &query).expect("connected query");
//! assert_eq!(out.matches.len(), 2);
//! println!("GLD transactions: {}", out.stats.gld());
//! ```

pub use gsi_api as api;
pub use gsi_baselines as baselines;
pub use gsi_core as engine;
pub use gsi_datasets as datasets;
pub use gsi_gpu_sim as sim;
pub use gsi_graph as graph;
pub use gsi_server as server;
pub use gsi_service as service;
pub use gsi_signature as signature;

/// The most common imports in one place.
pub mod prelude {
    pub use gsi_api::{ApiError, Completion, PartialReason};
    pub use gsi_core::{
        BackendKind, BatchItem, BatchOutput, ExplainPlan, FilterCache, FilterStrategy, GraphOp,
        GraphStats, GsiConfig, GsiEngine, JoinPlan, JoinScheme, LbParams, Matches, PlanError,
        PlannerKind, QueryOptions, QueryOutput, RunStats, SetOpKernels, SetOpStrategy, TraceConfig,
        UpdateBatch, UpdateError, UpdateReport,
    };
    pub use gsi_datasets::{DatasetKind, DatasetSpec};
    pub use gsi_gpu_sim::{DeviceConfig, Gpu};
    pub use gsi_graph::{Graph, GraphBuilder, StorageKind};
    pub use gsi_server::{GsiClient, GsiServer, ServerConfig, TenantPolicy};
    pub use gsi_service::{
        GsiService, MetricFormat, QueryRequest, QueryResponse, ServiceConfig, ServiceStatsSnapshot,
        SubmitError,
    };
    pub use gsi_signature::{Layout, SignatureConfig};
}
