//! The consolidated, serializable error taxonomy plus typed completion.
//!
//! Every way the serving stack refuses or fails a query — admission
//! control, validation, planning, deadlines, update conflicts, protocol
//! violations — maps onto one [`ApiError`]. The numeric discriminants
//! ([`ApiError::code`]) are **wire-frozen**: new variants append with new
//! codes, existing codes never change meaning, and an unknown code decodes
//! to a typed failure rather than garbage. The in-process error types
//! (`SubmitError`, `QueryError`, `CatalogUpdateError`, `PlanError`)
//! convert into `ApiError` losslessly enough for clients: structured
//! fields where retry decisions need them (queue capacities, waits),
//! strings where only a human will read them.

use crate::wire::{WireError, WireReader, WireWriter};
use std::time::Duration;

/// One serializable serving error with a stable numeric code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// No graph with this name is registered. Code 1.
    UnknownGraph {
        /// The name the request asked for.
        name: String,
    },
    /// The service's bounded admission queue is at capacity. Code 2.
    QueueFull {
        /// The configured queue capacity.
        capacity: u64,
    },
    /// The query cannot be served (empty or disconnected pattern). Code 3.
    InvalidQuery {
        /// Human-readable reason.
        reason: String,
    },
    /// The service is draining and no longer admits queries. Code 4.
    ShuttingDown,
    /// The deadline expired before the query ran. Code 5.
    DeadlineExpired {
        /// How long the query waited before being failed.
        waited: Duration,
    },
    /// The planner rejected the pattern with a typed error. Code 6.
    PlanRejected {
        /// Human-readable reason.
        reason: String,
    },
    /// The query's execution failed inside the service (isolated panic or
    /// a dropped in-flight response). Code 7.
    Internal {
        /// The failure message.
        message: String,
    },
    /// An update batch failed validation against the current graph. Code 8.
    UpdateRejected {
        /// Human-readable reason.
        reason: String,
    },
    /// A concurrent update or re-registration won the publication race;
    /// retry against the new current state. Code 9.
    UpdateConflict {
        /// The graph whose update conflicted.
        name: String,
    },
    /// The peer violated the wire protocol; the connection is closed.
    /// Code 10.
    Protocol {
        /// What was malformed.
        reason: String,
    },
    /// A tenant quota rejected the request (the `Busy` backpressure frame
    /// carries the retry hint; this is the error form for in-process
    /// callers and logs). Code 11.
    TenantQuota {
        /// The tenant whose quota rejected.
        tenant: String,
        /// Human-readable reason (which quota, at what bound).
        reason: String,
    },
}

impl ApiError {
    /// The wire-frozen discriminant.
    pub fn code(&self) -> u16 {
        match self {
            ApiError::UnknownGraph { .. } => 1,
            ApiError::QueueFull { .. } => 2,
            ApiError::InvalidQuery { .. } => 3,
            ApiError::ShuttingDown => 4,
            ApiError::DeadlineExpired { .. } => 5,
            ApiError::PlanRejected { .. } => 6,
            ApiError::Internal { .. } => 7,
            ApiError::UpdateRejected { .. } => 8,
            ApiError::UpdateConflict { .. } => 9,
            ApiError::Protocol { .. } => 10,
            ApiError::TenantQuota { .. } => 11,
        }
    }

    /// Whether retrying the same request later can succeed (backpressure
    /// and races), as opposed to a request the server will always refuse.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ApiError::QueueFull { .. }
                | ApiError::UpdateConflict { .. }
                | ApiError::TenantQuota { .. }
        )
    }

    /// Encode as `code u16` plus the variant's fields.
    pub fn encode(&self, w: &mut WireWriter) {
        w.u16(self.code());
        match self {
            ApiError::UnknownGraph { name } => {
                w.str(name);
            }
            ApiError::QueueFull { capacity } => {
                w.u64(*capacity);
            }
            ApiError::InvalidQuery { reason } => {
                w.str(reason);
            }
            ApiError::ShuttingDown => {}
            ApiError::DeadlineExpired { waited } => {
                w.u64(waited.as_micros() as u64);
            }
            ApiError::PlanRejected { reason } => {
                w.str(reason);
            }
            ApiError::Internal { message } => {
                w.str(message);
            }
            ApiError::UpdateRejected { reason } => {
                w.str(reason);
            }
            ApiError::UpdateConflict { name } => {
                w.str(name);
            }
            ApiError::Protocol { reason } => {
                w.str(reason);
            }
            ApiError::TenantQuota { tenant, reason } => {
                w.str(tenant).str(reason);
            }
        }
    }

    /// Decode an error encoded by [`ApiError::encode`].
    pub fn decode(r: &mut WireReader<'_>) -> Result<ApiError, WireError> {
        Ok(match r.u16()? {
            1 => ApiError::UnknownGraph { name: r.str()? },
            2 => ApiError::QueueFull { capacity: r.u64()? },
            3 => ApiError::InvalidQuery { reason: r.str()? },
            4 => ApiError::ShuttingDown,
            5 => ApiError::DeadlineExpired {
                waited: Duration::from_micros(r.u64()?),
            },
            6 => ApiError::PlanRejected { reason: r.str()? },
            7 => ApiError::Internal { message: r.str()? },
            8 => ApiError::UpdateRejected { reason: r.str()? },
            9 => ApiError::UpdateConflict { name: r.str()? },
            10 => ApiError::Protocol { reason: r.str()? },
            11 => ApiError::TenantQuota {
                tenant: r.str()?,
                reason: r.str()?,
            },
            other => {
                return Err(WireError::InvalidDiscriminant {
                    what: "ApiError code",
                    value: other as u64,
                })
            }
        })
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::UnknownGraph { name } => write!(f, "unknown graph '{name}'"),
            ApiError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ApiError::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
            ApiError::ShuttingDown => write!(f, "service is shutting down"),
            ApiError::DeadlineExpired { waited } => {
                write!(f, "deadline expired after waiting {waited:?}")
            }
            ApiError::PlanRejected { reason } => write!(f, "plan rejected: {reason}"),
            ApiError::Internal { message } => write!(f, "internal serving failure: {message}"),
            ApiError::UpdateRejected { reason } => write!(f, "update rejected: {reason}"),
            ApiError::UpdateConflict { name } => {
                write!(f, "graph '{name}' changed during the update; retry")
            }
            ApiError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            ApiError::TenantQuota { tenant, reason } => {
                write!(f, "tenant '{tenant}' over quota: {reason}")
            }
        }
    }
}

impl std::error::Error for ApiError {}

impl From<WireError> for ApiError {
    fn from(e: WireError) -> Self {
        ApiError::Protocol {
            reason: e.to_string(),
        }
    }
}

/// Why a result is partial rather than the full match set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartialReason {
    /// The engine's deadline triage stopped join enumeration early: the
    /// returned matches are a genuine subset, not a failure. Wire tag 1.
    DeadlineTriage,
    /// Enumeration stopped at a configured match cap (reserved for the
    /// top-k / bounded-enumeration semantics on the roadmap). Wire tag 2.
    EnumerationCap,
}

impl PartialReason {
    fn tag(self) -> u8 {
        match self {
            PartialReason::DeadlineTriage => 1,
            PartialReason::EnumerationCap => 2,
        }
    }
}

impl std::fmt::Display for PartialReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartialReason::DeadlineTriage => write!(f, "deadline triage"),
            PartialReason::EnumerationCap => write!(f, "enumeration cap"),
        }
    }
}

/// Whether a successful query outcome carries the complete match set.
///
/// Deadline-triaged enumeration used to surface only as the
/// `RunStats::timed_out` flag — indistinguishable, at the API boundary,
/// from a query that found everything. A typed completion makes "these
/// are all the matches" versus "these are the matches found before the
/// budget ran out, for this typed reason" an explicit contract on every
/// outcome, in process and on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// The full match set. Wire tag 0.
    Complete,
    /// A typed subset of the match set.
    Partial {
        /// Why enumeration stopped early.
        reason: PartialReason,
    },
}

impl Completion {
    /// Whether this outcome is the full match set.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }

    /// Encode as one tag byte.
    pub fn encode(&self, w: &mut WireWriter) {
        match self {
            Completion::Complete => w.u8(0),
            Completion::Partial { reason } => w.u8(reason.tag()),
        };
    }

    /// Decode a completion encoded by [`Completion::encode`].
    pub fn decode(r: &mut WireReader<'_>) -> Result<Completion, WireError> {
        Ok(match r.u8()? {
            0 => Completion::Complete,
            1 => Completion::Partial {
                reason: PartialReason::DeadlineTriage,
            },
            2 => Completion::Partial {
                reason: PartialReason::EnumerationCap,
            },
            other => {
                return Err(WireError::InvalidDiscriminant {
                    what: "Completion tag",
                    value: other as u64,
                })
            }
        })
    }
}

impl std::fmt::Display for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Completion::Complete => write!(f, "complete"),
            Completion::Partial { reason } => write!(f, "partial ({reason})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_errors() -> Vec<ApiError> {
        vec![
            ApiError::UnknownGraph { name: "g".into() },
            ApiError::QueueFull { capacity: 256 },
            ApiError::InvalidQuery {
                reason: "empty query".into(),
            },
            ApiError::ShuttingDown,
            ApiError::DeadlineExpired {
                waited: Duration::from_micros(1234),
            },
            ApiError::PlanRejected {
                reason: "disconnected at step 2".into(),
            },
            ApiError::Internal {
                message: "panic: boom".into(),
            },
            ApiError::UpdateRejected {
                reason: "duplicate edge".into(),
            },
            ApiError::UpdateConflict { name: "g".into() },
            ApiError::Protocol {
                reason: "bad magic".into(),
            },
            ApiError::TenantQuota {
                tenant: "acme".into(),
                reason: "64 queued (cap 64)".into(),
            },
        ]
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = all_errors();
        let codes: Vec<u16> = errors.iter().map(|e| e.code()).collect();
        assert_eq!(codes, (1..=11).collect::<Vec<u16>>());
    }

    #[test]
    fn every_error_round_trips() {
        for e in all_errors() {
            let mut w = WireWriter::new();
            e.encode(&mut w);
            let buf = w.into_vec();
            let mut r = WireReader::new(&buf);
            assert_eq!(ApiError::decode(&mut r).unwrap(), e);
            r.finish().unwrap();
        }
    }

    #[test]
    fn unknown_code_is_a_typed_decode_failure() {
        let mut w = WireWriter::new();
        w.u16(999);
        let buf = w.into_vec();
        assert!(matches!(
            ApiError::decode(&mut WireReader::new(&buf)),
            Err(WireError::InvalidDiscriminant {
                what: "ApiError code",
                value: 999
            })
        ));
    }

    #[test]
    fn completion_round_trips() {
        for c in [
            Completion::Complete,
            Completion::Partial {
                reason: PartialReason::DeadlineTriage,
            },
            Completion::Partial {
                reason: PartialReason::EnumerationCap,
            },
        ] {
            let mut w = WireWriter::new();
            c.encode(&mut w);
            let buf = w.into_vec();
            assert_eq!(Completion::decode(&mut WireReader::new(&buf)).unwrap(), c);
        }
        assert!(Completion::decode(&mut WireReader::new(&[9])).is_err());
    }

    #[test]
    fn retryability_is_backpressure_shaped() {
        assert!(ApiError::QueueFull { capacity: 1 }.is_retryable());
        assert!(ApiError::TenantQuota {
            tenant: "t".into(),
            reason: "r".into()
        }
        .is_retryable());
        assert!(!ApiError::InvalidQuery { reason: "r".into() }.is_retryable());
        assert!(!ApiError::ShuttingDown.is_retryable());
    }
}
