//! The builder-style query request shared by both serving paths.

use crate::wire::{decode_graph, encode_graph, WireError, WireReader, WireWriter};
use gsi_graph::Graph;
use std::time::Duration;

/// The tenant queries are accounted to when the caller names none.
pub const DEFAULT_TENANT: &str = "default";

/// Sentinel for "no per-query deadline" in the wire encoding.
const NO_DEADLINE: u64 = u64::MAX;

/// A query submitted to the serving stack.
///
/// The same type is the in-process submission (`GsiService::submit`) and
/// the `Submit` frame payload. One wire caveat: the tenant id travels in
/// the **frame header** (so the server can route and apply quotas before
/// touching the payload), not in the payload this type encodes —
/// [`QueryRequest::decode`] therefore returns `tenant: None` and the
/// frame layer re-attaches the header's tenant via
/// [`QueryRequest::with_tenant`].
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Catalog name of the data graph to search.
    pub graph: String,
    /// The pattern to match.
    pub query: Graph,
    /// Per-query deadline (submit → response). `None` uses the service's
    /// default; `Some` overrides it.
    pub deadline: Option<Duration>,
    /// Tenant the query is accounted to for quotas and fair queueing.
    /// `None` means [`DEFAULT_TENANT`].
    pub tenant: Option<String>,
}

impl QueryRequest {
    /// Request against `graph` with the service's default deadline,
    /// accounted to the default tenant.
    pub fn new(graph: impl Into<String>, query: Graph) -> Self {
        Self {
            graph: graph.into(),
            query,
            deadline: None,
            tenant: None,
        }
    }

    /// Set a per-query deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Account the query to a tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// The tenant this query is accounted to.
    pub fn tenant_or_default(&self) -> &str {
        self.tenant.as_deref().unwrap_or(DEFAULT_TENANT)
    }

    /// Encode the payload: `graph str, deadline_us u64` (`u64::MAX` =
    /// service default), then the pattern via [`encode_graph`]. The tenant
    /// is intentionally omitted (see the type docs).
    pub fn encode(&self, w: &mut WireWriter) {
        w.str(&self.graph);
        w.u64(
            self.deadline
                .map_or(NO_DEADLINE, |d| (d.as_micros() as u64).min(NO_DEADLINE - 1)),
        );
        encode_graph(&self.query, w);
    }

    /// Decode a payload encoded by [`QueryRequest::encode`].
    pub fn decode(r: &mut WireReader<'_>) -> Result<QueryRequest, WireError> {
        let graph = r.str()?;
        let deadline_us = r.u64()?;
        let query = decode_graph(r)?;
        Ok(QueryRequest {
            graph,
            query,
            deadline: (deadline_us != NO_DEADLINE).then(|| Duration::from_micros(deadline_us)),
            tenant: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsi_graph::GraphBuilder;

    fn pattern() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(1);
        let c = b.add_vertex(2);
        b.add_edge(a, c, 0);
        b.build()
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let req = QueryRequest::new("g", pattern());
        assert_eq!(req.graph, "g");
        assert_eq!(req.deadline, None);
        assert_eq!(req.tenant_or_default(), DEFAULT_TENANT);

        let req = QueryRequest::new("g", pattern())
            .with_deadline(Duration::from_millis(5))
            .with_tenant("acme");
        assert_eq!(req.deadline, Some(Duration::from_millis(5)));
        assert_eq!(req.tenant_or_default(), "acme");
    }

    #[test]
    fn round_trips_without_tenant() {
        let req = QueryRequest::new("social", pattern())
            .with_deadline(Duration::from_micros(1234))
            .with_tenant("acme");
        let mut w = WireWriter::new();
        req.encode(&mut w);
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf);
        let back = QueryRequest::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.graph, "social");
        assert_eq!(back.deadline, Some(Duration::from_micros(1234)));
        assert_eq!(back.query.edges(), req.query.edges());
        // Tenant travels in the frame header, never in the payload.
        assert_eq!(back.tenant, None);
    }

    #[test]
    fn no_deadline_round_trips_as_none() {
        let req = QueryRequest::new("g", pattern());
        let mut w = WireWriter::new();
        req.encode(&mut w);
        let buf = w.into_vec();
        let back = QueryRequest::decode(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(back.deadline, None);
    }

    #[test]
    fn truncated_request_is_a_typed_error() {
        let req = QueryRequest::new("g", pattern());
        let mut w = WireWriter::new();
        req.encode(&mut w);
        let buf = w.into_vec();
        for cut in [0, 1, 3, buf.len() - 1] {
            assert!(QueryRequest::decode(&mut WireReader::new(&buf[..cut])).is_err());
        }
    }
}
