//! Little-endian wire codec primitives plus graph/update-batch payloads.
//!
//! Everything the serving stack puts on a socket goes through
//! [`WireWriter`] / [`WireReader`]: fixed-width integers are little-endian,
//! strings and byte blobs are length-prefixed (`u16` for strings, `u32`
//! for blobs), and every read is bounds-checked — a truncated or corrupt
//! buffer yields a typed [`WireError`], never a panic. The codec is
//! deliberately hand-rolled (no serde, matching the workspace's hermetic
//! style) and versioned at the *frame* layer (`gsi-server`), not here:
//! payload layouts only ever change together with a protocol-version bump.

use gsi_graph::{Graph, GraphBuilder, GraphOp, UpdateBatch};

/// Hard cap on length-prefixed strings (tenant ids, graph names, error
/// messages). Anything longer is a protocol violation, not a real name.
pub const MAX_WIRE_STRING: usize = 4096;

/// Hard cap on `u32`-length-prefixed byte blobs (metrics bodies, flight
/// recorder dumps) — large enough for any real export, small enough that a
/// forged length cannot drive a pre-allocation.
pub const MAX_WIRE_BLOB: usize = 32 << 20;

/// Why a buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a fixed-width field or counted payload.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes remaining in the buffer.
        have: usize,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A counted field exceeded its documented bound.
    Oversized {
        /// What was being decoded.
        what: &'static str,
        /// The declared length.
        len: usize,
        /// The allowed maximum.
        max: usize,
    },
    /// A discriminant byte/word had no defined meaning.
    InvalidDiscriminant {
        /// What was being decoded.
        what: &'static str,
        /// The unexpected value.
        value: u64,
    },
    /// Decoding finished with unconsumed bytes (payload/frame mismatch).
    TrailingBytes {
        /// Bytes left over.
        left: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated payload: needed {needed} byte(s), have {have}")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Oversized { what, len, max } => {
                write!(f, "{what} length {len} exceeds the wire bound {max}")
            }
            WireError::InvalidDiscriminant { what, value } => {
                write!(f, "invalid {what} discriminant {value}")
            }
            WireError::TrailingBytes { left } => {
                write!(f, "{left} unconsumed byte(s) after decoding")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u16`-length-prefixed UTF-8 string, truncated to
    /// [`MAX_WIRE_STRING`] bytes on a char boundary (encode never fails;
    /// names beyond the bound are cut, not rejected — the decoder enforces
    /// the same cap, so both sides agree).
    pub fn str(&mut self, s: &str) -> &mut Self {
        let mut end = s.len().min(MAX_WIRE_STRING);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let bytes = &s.as_bytes()[..end];
        self.u16(bytes.len() as u16);
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Append raw bytes with no length prefix (the caller frames them).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Append a `u32`-length-prefixed byte blob, truncated at
    /// [`MAX_WIRE_BLOB`] (the decoder enforces the same cap).
    pub fn blob(&mut self, bytes: &[u8]) -> &mut Self {
        let end = bytes.len().min(MAX_WIRE_BLOB);
        self.u32(end as u32);
        self.buf.extend_from_slice(&bytes[..end]);
        self
    }
}

/// Bounds-checked decoder over a borrowed byte buffer.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read exactly `n` raw bytes (no length prefix).
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `u16`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        if len > MAX_WIRE_STRING {
            return Err(WireError::Oversized {
                what: "string",
                len,
                max: MAX_WIRE_STRING,
            });
        }
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(|s| s.to_string())
            .map_err(|_| WireError::BadUtf8)
    }

    /// Read a `u32`-length-prefixed byte blob.
    pub fn blob(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        if len > MAX_WIRE_BLOB {
            return Err(WireError::Oversized {
                what: "blob",
                len,
                max: MAX_WIRE_BLOB,
            });
        }
        self.take(len)
    }

    /// Assert the buffer is fully consumed (frame/payload length match).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            return Err(WireError::TrailingBytes {
                left: self.remaining(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Graph payloads
// ---------------------------------------------------------------------------

/// Ceiling on wire-transported graph sizes: a decoder pre-allocates from
/// the declared counts, so they are bounded before any allocation happens.
pub const MAX_WIRE_VERTICES: usize = 1 << 26;
/// Ceiling on wire-transported edge counts (same pre-allocation concern).
pub const MAX_WIRE_EDGES: usize = 1 << 28;

/// Encode a labeled graph: `n_vertices u32, vlabels [u32], n_edges u32,
/// edges [(u u32, v u32, label u32)]`. Edges are the canonical `u < v`
/// enumeration, so encode → decode reproduces the same logical graph.
pub fn encode_graph(g: &Graph, w: &mut WireWriter) {
    w.u32(g.n_vertices() as u32);
    for v in 0..g.n_vertices() as u32 {
        w.u32(g.vlabel(v));
    }
    let edges = g.edges();
    w.u32(edges.len() as u32);
    for e in &edges {
        w.u32(e.u).u32(e.v).u32(e.label);
    }
}

/// Decode a graph encoded by [`encode_graph`].
pub fn decode_graph(r: &mut WireReader<'_>) -> Result<Graph, WireError> {
    let n = r.u32()? as usize;
    if n > MAX_WIRE_VERTICES {
        return Err(WireError::Oversized {
            what: "graph vertex count",
            len: n,
            max: MAX_WIRE_VERTICES,
        });
    }
    // Bound the pre-allocation by what the buffer can actually hold.
    if r.remaining() < n * 4 {
        return Err(WireError::Truncated {
            needed: n * 4,
            have: r.remaining(),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, 0);
    for _ in 0..n {
        b.add_vertex(r.u32()?);
    }
    let m = r.u32()? as usize;
    if m > MAX_WIRE_EDGES {
        return Err(WireError::Oversized {
            what: "graph edge count",
            len: m,
            max: MAX_WIRE_EDGES,
        });
    }
    if r.remaining() < m * 12 {
        return Err(WireError::Truncated {
            needed: m * 12,
            have: r.remaining(),
        });
    }
    for _ in 0..m {
        let (u, v, label) = (r.u32()?, r.u32()?, r.u32()?);
        if u as usize >= n || v as usize >= n {
            return Err(WireError::InvalidDiscriminant {
                what: "edge endpoint",
                value: u.max(v) as u64,
            });
        }
        if u == v {
            return Err(WireError::InvalidDiscriminant {
                what: "self-loop edge",
                value: u as u64,
            });
        }
        b.add_edge(u, v, label);
    }
    Ok(b.build())
}

// ---------------------------------------------------------------------------
// Update-batch payloads
// ---------------------------------------------------------------------------

const OP_ADD_VERTEX: u8 = 1;
const OP_INSERT_EDGE: u8 = 2;
const OP_REMOVE_EDGE: u8 = 3;

/// Encode an update batch: `n_ops u32`, then per op a tag byte
/// (`1=AddVertex{label u32}`, `2=InsertEdge{u,v,label u32}`,
/// `3=RemoveEdge{u,v,label u32}`).
pub fn encode_update_batch(batch: &UpdateBatch, w: &mut WireWriter) {
    let ops = batch.ops();
    w.u32(ops.len() as u32);
    for op in ops {
        match *op {
            GraphOp::AddVertex { label } => {
                w.u8(OP_ADD_VERTEX).u32(label);
            }
            GraphOp::InsertEdge { u, v, label } => {
                w.u8(OP_INSERT_EDGE).u32(u).u32(v).u32(label);
            }
            GraphOp::RemoveEdge { u, v, label } => {
                w.u8(OP_REMOVE_EDGE).u32(u).u32(v).u32(label);
            }
        }
    }
}

/// Decode a batch encoded by [`encode_update_batch`].
pub fn decode_update_batch(r: &mut WireReader<'_>) -> Result<UpdateBatch, WireError> {
    let n = r.u32()? as usize;
    if n > MAX_WIRE_EDGES {
        return Err(WireError::Oversized {
            what: "update-batch op count",
            len: n,
            max: MAX_WIRE_EDGES,
        });
    }
    // Cheapest op is 5 bytes; reject counts the buffer cannot hold.
    if r.remaining() < n * 5 {
        return Err(WireError::Truncated {
            needed: n * 5,
            have: r.remaining(),
        });
    }
    let mut batch = UpdateBatch::new();
    for _ in 0..n {
        match r.u8()? {
            OP_ADD_VERTEX => {
                batch.add_vertex(r.u32()?);
            }
            OP_INSERT_EDGE => {
                let (u, v, label) = (r.u32()?, r.u32()?, r.u32()?);
                batch.insert_edge(u, v, label);
            }
            OP_REMOVE_EDGE => {
                let (u, v, label) = (r.u32()?, r.u32()?, r.u32()?);
                batch.remove_edge(u, v, label);
            }
            other => {
                return Err(WireError::InvalidDiscriminant {
                    what: "graph op",
                    value: other as u64,
                })
            }
        }
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = WireWriter::new();
        w.u8(7).u16(0xBEEF).u32(0xDEAD_BEEF).u64(u64::MAX).str("hi");
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.str().unwrap(), "hi");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut w = WireWriter::new();
        w.u32(42);
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf[..2]);
        assert_eq!(r.u32(), Err(WireError::Truncated { needed: 4, have: 2 }));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let buf = [0u8; 3];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { left: 2 }));
    }

    #[test]
    fn string_cap_is_symmetric() {
        let long = "x".repeat(MAX_WIRE_STRING + 100);
        let mut w = WireWriter::new();
        w.str(&long);
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.str().unwrap().len(), MAX_WIRE_STRING);

        // A forged over-cap length prefix is rejected.
        let mut w = WireWriter::new();
        w.u16((MAX_WIRE_STRING + 1) as u16);
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.str(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn blob_round_trips_and_rejects_forged_length() {
        let mut w = WireWriter::new();
        w.blob(&[1, 2, 3]).u8(7);
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.blob().unwrap(), &[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 7);

        let mut w = WireWriter::new();
        w.u32((MAX_WIRE_BLOB + 1) as u32);
        let buf = w.into_vec();
        assert!(matches!(
            WireReader::new(&buf).blob(),
            Err(WireError::Oversized { what: "blob", .. })
        ));
    }

    #[test]
    fn graph_round_trips() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(0);
        let v1 = b.add_vertex(3);
        let v2 = b.add_vertex(3);
        b.add_edge(v0, v1, 1);
        b.add_edge(v1, v2, 0);
        let g = b.build();

        let mut w = WireWriter::new();
        encode_graph(&g, &mut w);
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf);
        let back = decode_graph(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.n_vertices(), g.n_vertices());
        assert_eq!(back.n_edges(), g.n_edges());
        assert_eq!(back.vlabels(), g.vlabels());
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn graph_decode_rejects_forged_counts_and_bad_endpoints() {
        // A count far past what the buffer holds must fail before allocating.
        let mut w = WireWriter::new();
        w.u32(1_000_000);
        let buf = w.into_vec();
        assert!(matches!(
            decode_graph(&mut WireReader::new(&buf)),
            Err(WireError::Truncated { .. })
        ));

        // An edge endpoint outside the declared vertex range is invalid.
        let mut w = WireWriter::new();
        w.u32(2).u32(0).u32(0); // 2 vertices, labels 0,0
        w.u32(1).u32(0).u32(9).u32(0); // edge 0-9
        let buf = w.into_vec();
        assert!(matches!(
            decode_graph(&mut WireReader::new(&buf)),
            Err(WireError::InvalidDiscriminant { .. })
        ));
    }

    #[test]
    fn update_batch_round_trips() {
        let mut batch = UpdateBatch::new();
        batch.add_vertex(5);
        batch.insert_edge(0, 3, 2);
        batch.remove_edge(1, 2, 0);
        let mut w = WireWriter::new();
        encode_update_batch(&batch, &mut w);
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf);
        let back = decode_update_batch(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.ops(), batch.ops());
    }

    #[test]
    fn update_batch_decode_rejects_unknown_op() {
        let mut w = WireWriter::new();
        w.u32(1).u8(99).u32(0); // padded past the minimum-size precheck
        let buf = w.into_vec();
        assert!(matches!(
            decode_update_batch(&mut WireReader::new(&buf)),
            Err(WireError::InvalidDiscriminant {
                what: "graph op",
                value: 99
            })
        ));
    }
}
