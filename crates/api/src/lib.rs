//! # gsi-api — the wire-stable serving API
//!
//! The serving stack has two entry paths: in-process calls into
//! `gsi-service` and network frames into `gsi-server`. Both speak the
//! types in this crate, so a request built for one path is byte-for-byte
//! expressible on the other, and an error observed over the wire carries
//! the same taxonomy as one observed in process:
//!
//! * **[`QueryRequest`]** — a builder-style request: data-graph name,
//!   pattern, optional deadline, optional tenant id. `gsi-service`
//!   re-exports it as its submission type; `gsi-server` encodes it as the
//!   `Submit` frame payload.
//! * **[`ApiError`]** — the consolidated error taxonomy. Every way the
//!   serving stack can refuse or fail a query (admission, validation,
//!   planning, deadlines, update conflicts, protocol violations) maps onto
//!   one serializable enum whose numeric discriminants
//!   ([`ApiError::code`]) are **frozen**: new variants append, existing
//!   codes never change meaning.
//! * **[`Completion`]** — whether a result is the full match set or a
//!   typed partial ([`PartialReason`]). Deadline-triaged enumeration used
//!   to be observable only as a `timed_out` flag buried in run stats;
//!   `Completion::Partial { reason }` makes it a first-class outcome.
//! * **[`wire`]** — the hand-rolled little-endian codec the above (and
//!   the `gsi-server` frame layer) serialize through: length-checked
//!   reads, no panics, no dependencies.
//!
//! The crate deliberately depends only on `gsi-graph` (patterns and
//! update batches are part of requests) so clients can link it without
//! pulling in the engine.

pub mod error;
pub mod request;
pub mod wire;

pub use error::{ApiError, Completion, PartialReason};
pub use request::QueryRequest;
pub use wire::{WireError, WireReader, WireWriter};
