//! Experiment runners: execute engine variants over query batches and
//! aggregate the paper's metrics.

use crate::workloads::HarnessOpts;
use gsi::baselines::edge_join::EdgeJoinEngine;
use gsi::baselines::{cfl, vf2, vf3, EngineResult};
use gsi::prelude::*;
use std::time::Duration;

/// Aggregate of one engine variant over a query batch.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Number of queries measured.
    pub queries: usize,
    /// Summed wall time.
    pub total_time: Duration,
    /// Summed filter-phase wall time.
    pub filter_time: Duration,
    /// Summed join-phase wall time (GSI engines only).
    pub join_time: Duration,
    /// Summed join-phase GLD transactions.
    pub join_gld: u64,
    /// Summed join-phase GST transactions.
    pub join_gst: u64,
    /// Summed total GLD transactions (filter + join).
    pub gld: u64,
    /// Summed total GST transactions.
    pub gst: u64,
    /// Summed kernel launches.
    pub kernels: u64,
    /// Summed minimum candidate-set sizes.
    pub min_candidate: usize,
    /// Summed match counts.
    pub matches: usize,
    /// Queries that hit the timeout / guard.
    pub timeouts: usize,
    /// Wall time summed over *completed* (non-timeout) queries only.
    pub completed_time: Duration,
    /// Summed device allocation requests.
    pub allocs: u64,
    /// Summed join-backend work units (total streamed elements).
    pub join_work_units: u64,
    /// Summed join-backend span units (schedule critical path).
    pub join_span_units: u64,
}

impl Aggregate {
    /// Mean wall time per query.
    pub fn avg_time(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.queries as u32
        }
    }

    /// Mean wall time over completed queries only; `None` if all timed out.
    pub fn avg_completed_time(&self) -> Option<Duration> {
        let done = self.queries - self.timeouts;
        if done == 0 {
            None
        } else {
            Some(self.completed_time / done as u32)
        }
    }

    /// Mean filter time per query.
    pub fn avg_filter_time(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.filter_time / self.queries as u32
        }
    }

    /// Mean join-phase time per query.
    pub fn avg_join_time(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.join_time / self.queries as u32
        }
    }

    /// Mean join GLD per query.
    pub fn avg_join_gld(&self) -> u64 {
        if self.queries == 0 {
            0
        } else {
            self.join_gld / self.queries as u64
        }
    }

    /// Mean join GST per query.
    pub fn avg_join_gst(&self) -> u64 {
        if self.queries == 0 {
            0
        } else {
            self.join_gst / self.queries as u64
        }
    }

    /// Mean minimum candidate size per query.
    pub fn avg_min_candidate(&self) -> usize {
        self.min_candidate.checked_div(self.queries).unwrap_or(0)
    }
}

/// Run a GSI config over a query batch on a fresh default device.
pub fn run_gsi(cfg: &GsiConfig, data: &Graph, queries: &[Graph], opts: &HarnessOpts) -> Aggregate {
    run_gsi_on_device(cfg, DeviceConfig::titan_xp(), data, queries, opts)
}

/// Run a GSI config over a query batch on an explicit device (backend
/// comparisons fix `worker_threads` / latency modeling here).
pub fn run_gsi_on_device(
    cfg: &GsiConfig,
    device: DeviceConfig,
    data: &Graph,
    queries: &[Graph],
    opts: &HarnessOpts,
) -> Aggregate {
    let engine = GsiEngine::with_gpu(cfg.clone(), Gpu::new(device));
    let prepared = engine.prepare(data);
    let mut agg = Aggregate::default();
    for q in queries {
        let out = engine
            .query_with_timeout(data, &prepared, q, Some(opts.timeout()))
            .expect("plans");
        agg.queries += 1;
        agg.total_time += out.stats.total_time;
        agg.filter_time += out.stats.filter_time;
        agg.join_time += out.stats.join_time;
        agg.join_gld += out.stats.join_gld();
        agg.join_gst += out.stats.join_gst();
        agg.gld += out.stats.gld();
        agg.gst += out.stats.gst();
        agg.kernels += out.stats.kernels();
        agg.min_candidate += out.stats.min_candidate;
        agg.matches += out.stats.n_matches;
        agg.allocs += out.stats.device.device_allocs;
        agg.join_work_units += out.stats.join_work_units;
        agg.join_span_units += out.stats.join_span_units;
        agg.timeouts += out.stats.timed_out as usize;
        if !out.stats.timed_out {
            agg.completed_time += out.stats.total_time;
        }
    }
    agg
}

/// Run only the filtering phase of a GSI config (Tables IV and V).
pub fn run_gsi_filter_only(cfg: &GsiConfig, data: &Graph, queries: &[Graph]) -> Aggregate {
    let engine = GsiEngine::new(cfg.clone());
    let prepared = engine.prepare(data);
    let mut agg = Aggregate::default();
    for q in queries {
        let snap0 = engine.gpu().stats().snapshot();
        let t0 = std::time::Instant::now();
        let cands = engine.filter(&prepared, q);
        agg.filter_time += t0.elapsed();
        agg.total_time += t0.elapsed();
        let delta = engine.gpu().stats().snapshot() - snap0;
        agg.gld += delta.gld_transactions;
        agg.min_candidate += gsi::signature::min_candidate_size(&cands);
        agg.queries += 1;
    }
    agg
}

/// Run an edge-oriented GPU baseline over a query batch.
pub fn run_edge_baseline(
    engine: &EdgeJoinEngine,
    data: &Graph,
    queries: &[Graph],
    opts: &HarnessOpts,
) -> Aggregate {
    let prepared = engine.prepare(data);
    let mut agg = Aggregate::default();
    for q in queries {
        let res = engine.run_with_timeout(data, &prepared, q, Some(opts.timeout()));
        fold_engine_result(&mut agg, &res);
    }
    agg
}

/// Run a CPU backtracking baseline over a query batch.
pub fn run_cpu_baseline(
    which: CpuBaseline,
    data: &Graph,
    queries: &[Graph],
    opts: &HarnessOpts,
) -> Aggregate {
    let mut agg = Aggregate::default();
    for q in queries {
        let res = match which {
            CpuBaseline::Vf2 => vf2::run(data, q, Some(opts.cpu_timeout())),
            CpuBaseline::Vf3 => vf3::run(data, q, Some(opts.cpu_timeout())),
            CpuBaseline::Cfl => cfl::run(data, q, Some(opts.cpu_timeout())),
        };
        fold_engine_result(&mut agg, &res);
    }
    agg
}

/// Which CPU baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuBaseline {
    /// Classic VF2.
    Vf2,
    /// VF3-like (ordering + lookahead).
    Vf3,
    /// CFL-Match-like (core-forest-leaf + NLF).
    Cfl,
}

fn fold_engine_result(agg: &mut Aggregate, res: &EngineResult) {
    agg.queries += 1;
    agg.total_time += res.elapsed;
    if !res.timed_out {
        agg.completed_time += res.elapsed;
    }
    agg.matches += res.len();
    agg.timeouts += res.timed_out as usize;
    if let Some(dev) = res.device {
        agg.gld += dev.gld_transactions;
        agg.gst += dev.gst_transactions;
        agg.kernels += dev.kernel_launches;
        agg.allocs += dev.device_allocs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::HarnessOpts;
    use gsi::datasets::DatasetKind;

    fn tiny() -> (HarnessOpts, std::sync::Arc<Graph>, Vec<Graph>) {
        let opts = HarnessOpts {
            scale: 0.03,
            queries: 2,
            query_size: 4,
            ..Default::default()
        };
        let data = opts.dataset(DatasetKind::Enron);
        let queries = opts.query_batch(&data);
        (opts, data, queries)
    }

    #[test]
    fn gsi_aggregate_populates() {
        let (opts, data, queries) = tiny();
        let agg = run_gsi(&GsiConfig::gsi_opt(), &data, &queries, &opts);
        assert_eq!(agg.queries, queries.len());
        assert!(agg.gld > 0);
        assert!(agg.avg_time() > Duration::ZERO);
        assert_eq!(agg.timeouts, 0);
    }

    #[test]
    fn backends_agree_on_device_counters() {
        let (opts, data, queries) = tiny();
        let device = DeviceConfig {
            worker_threads: 1,
            ..DeviceConfig::titan_xp()
        };
        let cfg = GsiConfig::gsi_opt();
        let serial = run_gsi_on_device(&cfg, device.clone(), &data, &queries, &opts);
        let par = run_gsi_on_device(
            &cfg.with_backend(BackendKind::HostParallel, 3),
            device,
            &data,
            &queries,
            &opts,
        );
        assert_eq!(serial.matches, par.matches);
        assert_eq!(serial.gld, par.gld);
        assert_eq!(serial.gst, par.gst);
        assert_eq!(serial.kernels, par.kernels);
        assert_eq!(serial.join_work_units, par.join_work_units);
        assert!(par.join_span_units <= par.join_work_units);
        assert!(serial.join_work_units > 0);
    }

    #[test]
    fn filter_only_aggregate() {
        let (_, data, queries) = tiny();
        let agg = run_gsi_filter_only(&GsiConfig::gsi(), &data, &queries);
        assert!(agg.min_candidate > 0, "walk queries always have a match");
        assert!(agg.gld > 0);
    }

    #[test]
    fn cpu_baseline_aggregate() {
        let (opts, data, queries) = tiny();
        let agg = run_cpu_baseline(CpuBaseline::Vf2, &data, &queries, &opts);
        assert_eq!(agg.queries, queries.len());
        assert!(agg.matches > 0);
    }

    #[test]
    fn gpu_baseline_aggregate() {
        let (opts, data, queries) = tiny();
        let engine = gsi::baselines::gpsm::engine(Gpu::new(DeviceConfig::titan_xp()));
        let agg = run_edge_baseline(&engine, &data, &queries, &opts);
        assert_eq!(agg.queries, queries.len());
        assert!(agg.gld > 0);
    }
}
