//! `paper serve` — the network serving load harness (PR 10 trajectory).
//!
//! Drives a real [`GsiServer`] over TCP with two arrival models:
//!
//! * **closed loop** — each client issues its next query the moment the
//!   previous one completes; measures the server's sustainable
//!   throughput and in-saturation latency.
//! * **open loop** — queries arrive on a fixed-rate schedule regardless
//!   of completions, and each latency is measured from the *scheduled*
//!   arrival time, not the actual send — the coordinated-omission-aware
//!   number. Sweeping the rate past the closed-loop throughput exposes
//!   the saturation knee.
//!
//! Both phases run mixed tenants and concurrent update churn. Before and
//! after the load, every probe query is **equivalence-gated**: the match
//! set streamed over the wire must be bit-identical (canonical order) to
//! `GsiService::query_blocking` on the same service instance.

use crate::report::JsonObj;
use crate::workloads::HarnessOpts;
use gsi::api::QueryRequest;
use gsi::datasets::DatasetKind;
use gsi::graph::query_gen::random_walk_query;
use gsi::graph::update::random_update_batch;
use gsi::graph::Graph;
use gsi::server::{ClientError, GsiClient, GsiServer, ServerConfig, TenantPolicy};
use gsi::service::{GsiService, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Latency percentiles of one load phase, microsecond resolution.
#[derive(Debug, Clone, Copy)]
struct Percentiles {
    p50: Duration,
    p99: Duration,
    p999: Duration,
}

fn percentiles(samples: &mut [Duration]) -> Percentiles {
    assert!(!samples.is_empty(), "phase produced no latency samples");
    samples.sort_unstable();
    let at = |p: f64| {
        let idx = (p * (samples.len() - 1) as f64).round() as usize;
        samples[idx.min(samples.len() - 1)]
    };
    Percentiles {
        p50: at(0.50),
        p99: at(0.99),
        p999: at(0.999),
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The query pool: connected random-walk patterns of 3–6 vertices, sized
/// for serving latency rather than the paper's heavyweight defaults.
fn query_pool(data: &Graph, seed: u64, n: usize) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = Vec::with_capacity(n);
    while pool.len() < n {
        let size = 3 + pool.len() % 4;
        if let Some(q) = random_walk_query(data, size, &mut rng) {
            pool.push(q);
        }
    }
    pool
}

/// One wire query with bounded Busy retries. Returns the busy count.
fn query_with_backoff(
    client: &mut GsiClient,
    request: QueryRequest,
) -> Result<(gsi::server::RemoteOutcome, u64), ClientError> {
    let mut busy = 0u64;
    loop {
        match client.query(request.clone()) {
            Ok(outcome) => return Ok((outcome, busy)),
            Err(ClientError::Busy { retry_after }) => {
                busy += 1;
                std::thread::sleep(retry_after.max(Duration::from_micros(200)));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Wire-vs-in-process equivalence over `pool`: every canonical match set
/// must be identical. Returns the total number of matches checked.
fn equivalence_gate(
    addr: SocketAddr,
    service: &GsiService,
    graph_name: &str,
    pool: &[Graph],
) -> u64 {
    let mut client = GsiClient::connect(addr).expect("gate connect");
    let mut total = 0u64;
    for (i, q) in pool.iter().enumerate() {
        let (remote, _busy) =
            query_with_backoff(&mut client, QueryRequest::new(graph_name, q.clone()))
                .unwrap_or_else(|e| panic!("gate query {i} failed over the wire: {e}"));
        let local = service
            .query_blocking(QueryRequest::new(graph_name, q.clone()))
            .expect("gate query admitted")
            .result
            .unwrap_or_else(|e| panic!("gate query {i} failed in-process: {e:?}"));
        assert_eq!(
            remote.canonical(),
            local.output.matches.canonical(),
            "equivalence gate: wire and in-process diverge on query {i}"
        );
        total += remote.assignments.len() as u64;
    }
    total
}

struct PhaseOutcome {
    latencies: Vec<Duration>,
    wall: Duration,
    busy: u64,
}

/// Closed loop: `clients` threads, round-robin tenants, each issuing
/// `per_client` queries back to back.
fn closed_loop(
    addr: SocketAddr,
    graph_name: &str,
    pool: Arc<Vec<Graph>>,
    clients: usize,
    per_client: usize,
) -> PhaseOutcome {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let pool = Arc::clone(&pool);
            let graph_name = graph_name.to_string();
            std::thread::spawn(move || {
                let mut client = GsiClient::connect(addr)
                    .expect("closed-loop connect")
                    .with_tenant(format!("tenant-{}", c % 4));
                let mut latencies = Vec::with_capacity(per_client);
                let mut busy = 0u64;
                for i in 0..per_client {
                    let q = pool[(c + i * clients) % pool.len()].clone();
                    let sent = Instant::now();
                    let (_outcome, b) =
                        query_with_backoff(&mut client, QueryRequest::new(&graph_name, q))
                            .unwrap_or_else(|e| panic!("closed-loop query failed: {e}"));
                    latencies.push(sent.elapsed());
                    busy += b;
                }
                (latencies, busy)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut busy = 0u64;
    for h in handles {
        let (l, b) = h.join().expect("closed-loop client");
        latencies.extend(l);
        busy += b;
    }
    PhaseOutcome {
        latencies,
        wall: t0.elapsed(),
        busy,
    }
}

/// Open loop at a fixed arrival rate: `arrivals` queries are scheduled at
/// `1/rate` intervals from a common origin; a pool of worker connections
/// picks up each arrival in order, sleeping until its scheduled time if
/// early and proceeding immediately if the schedule has slipped. The
/// recorded latency runs from the *scheduled* time, so queueing delay
/// under saturation is charged to the server, not silently absorbed by
/// the client (coordinated omission).
fn open_loop(
    addr: SocketAddr,
    graph_name: &str,
    pool: Arc<Vec<Graph>>,
    workers: usize,
    rate_qps: f64,
    arrivals: usize,
) -> PhaseOutcome {
    let interval = Duration::from_secs_f64(1.0 / rate_qps.max(0.1));
    let next = Arc::new(AtomicUsize::new(0));
    let busy_total = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let pool = Arc::clone(&pool);
            let next = Arc::clone(&next);
            let busy_total = Arc::clone(&busy_total);
            let graph_name = graph_name.to_string();
            std::thread::spawn(move || {
                let mut client = GsiClient::connect(addr)
                    .expect("open-loop connect")
                    .with_tenant(format!("tenant-{}", w % 4));
                let mut latencies = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= arrivals {
                        return latencies;
                    }
                    let scheduled = t0 + interval.mul_f64(i as f64);
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let q = pool[i % pool.len()].clone();
                    let (_outcome, b) =
                        query_with_backoff(&mut client, QueryRequest::new(&graph_name, q))
                            .unwrap_or_else(|e| panic!("open-loop query failed: {e}"));
                    busy_total.fetch_add(b, Ordering::Relaxed);
                    // Latency from the schedule, not the send.
                    latencies.push(scheduled.elapsed());
                }
            })
        })
        .collect();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("open-loop worker"));
    }
    PhaseOutcome {
        latencies,
        wall: t0.elapsed(),
        busy: busy_total.load(Ordering::Relaxed),
    }
}

/// The `paper serve` experiment: equivalence gate, closed-loop load,
/// open-loop rate sweep with knee detection, update churn throughout the
/// load phases, graceful drain — reported to `out_path`.
pub fn serve(opts: &HarnessOpts, clients: usize, min_throughput: f64, out_path: &str) {
    println!("\n=== Serving over the wire — closed/open-loop load harness ===");

    let data = gsi::datasets::build(&opts.spec(DatasetKind::Enron));
    println!(
        "dataset: enron stand-in, |V|={}, |E|={}",
        data.n_vertices(),
        data.n_edges()
    );
    let service = Arc::new(GsiService::new(ServiceConfig {
        workers: 4,
        queue_capacity: 512,
        ..ServiceConfig::for_tests()
    }));
    let server = GsiServer::start(
        Arc::clone(&service),
        ServerConfig {
            tenants: TenantPolicy {
                queue_quota: 128,
                inflight_quota: 16,
                quantum: 8,
            },
            responders: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let mut setup = GsiClient::connect(addr).expect("connect");
    setup.register("enron", &data).expect("register over wire");

    let pool = Arc::new(query_pool(&data, opts.seed, 12));
    let gate_pool: Vec<Graph> = pool.iter().take(8).cloned().collect();

    // Phase 1: pre-load equivalence gate on a quiescent server.
    let gate_matches = equivalence_gate(addr, &service, "enron", &gate_pool);
    println!("equivalence gate (pre-load): 8 queries, {gate_matches} matches, bit-identical");

    // Update churn runs through both load phases: a writer applies a
    // small batch over the wire every few milliseconds, tracking the
    // evolving graph locally so every batch is valid by construction.
    let churn_stop = Arc::new(AtomicBool::new(false));
    let churn_counts = Arc::new(Mutex::new((0u64, 0u64))); // (batches, final epoch)
    let churn = {
        let stop = Arc::clone(&churn_stop);
        let counts = Arc::clone(&churn_counts);
        let mut current = data.clone();
        let seed = opts.seed;
        std::thread::spawn(move || {
            let mut client = GsiClient::connect(addr)
                .expect("churn connect")
                .with_tenant("churn");
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A2);
            while !stop.load(Ordering::Relaxed) {
                let batch = random_update_batch(&current, 8, 2, &mut rng);
                if batch.is_empty() {
                    continue;
                }
                let up = client.update("enron", &batch).expect("churn update");
                current = current.apply_updates(&batch).expect("batch is valid");
                let mut c = counts.lock().expect("churn counts");
                c.0 += 1;
                c.1 = up.epoch;
                drop(c);
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    // Phase 2: closed loop.
    let per_client = (opts.queries * 8).max(24);
    let mut closed = closed_loop(addr, "enron", Arc::clone(&pool), clients, per_client);
    let closed_n = closed.latencies.len();
    let closed_pct = percentiles(&mut closed.latencies);
    let closed_qps = closed_n as f64 / closed.wall.as_secs_f64();
    println!(
        "closed loop: {clients} clients x {per_client} queries -> {closed_qps:.1} q/s, \
         p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms, {} busy retries",
        ms(closed_pct.p50),
        ms(closed_pct.p99),
        ms(closed_pct.p999),
        closed.busy
    );

    // Phase 3: open-loop sweep, rates calibrated to the closed-loop
    // throughput so the knee is bracketed by construction.
    let arrivals = (opts.queries * 16).max(48);
    let rate_fractions = [0.4f64, 0.8, 1.2];
    let mut sweep: Vec<(f64, f64, Percentiles, u64)> = Vec::new();
    for frac in rate_fractions {
        let rate = (closed_qps * frac).max(1.0);
        let mut phase = open_loop(
            addr,
            "enron",
            Arc::clone(&pool),
            clients * 2,
            rate,
            arrivals,
        );
        let pct = percentiles(&mut phase.latencies);
        let achieved = phase.latencies.len() as f64 / phase.wall.as_secs_f64();
        println!(
            "open loop @ {rate:.1} q/s offered: {achieved:.1} q/s achieved, \
             p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms, {} busy retries",
            ms(pct.p50),
            ms(pct.p99),
            ms(pct.p999),
            phase.busy
        );
        sweep.push((rate, achieved, pct, phase.busy));
    }

    // Saturation knee: the first offered rate the server can no longer
    // track — achieved < 90% of offered, or p99 blowing up by 8x over the
    // lightest load. The knee estimate is the last rate *before* that.
    let base_p99 = sweep[0].2.p99;
    let mut knee_qps = sweep[sweep.len() - 1].1; // default: highest achieved
    let mut knee_found = false;
    for (i, (offered, achieved, pct, _)) in sweep.iter().enumerate() {
        let saturated = *achieved < 0.9 * *offered || (i > 0 && pct.p99 > base_p99.mul_f64(8.0));
        if saturated {
            knee_qps = if i == 0 { *achieved } else { sweep[i - 1].0 };
            knee_found = true;
            break;
        }
    }
    println!(
        "saturation knee: ~{knee_qps:.1} q/s ({})",
        if knee_found {
            "offered rate before the first saturated step"
        } else {
            "no saturated step in sweep; highest achieved rate"
        }
    );

    // Phase 4: stop the churn, then re-gate equivalence on the *mutated*
    // catalog — serving results must still match in-process exactly.
    churn_stop.store(true, Ordering::Relaxed);
    churn.join().expect("churn thread");
    let (churn_batches, churn_epoch) = *churn_counts.lock().expect("churn counts");
    let regate_matches = equivalence_gate(addr, &service, "enron", &gate_pool);
    println!(
        "update churn: {churn_batches} batches applied over the wire (final epoch {churn_epoch}); \
         post-churn equivalence gate: 8 queries, {regate_matches} matches, bit-identical"
    );

    // Phase 5: graceful drain.
    drop(setup);
    let report = server.shutdown();
    println!(
        "drain: {} responses served over the server's lifetime, {} connection(s) closed",
        report.served_total, report.connections_drained
    );
    let expected_served = (closed_n + sweep.len() * arrivals + 2 * gate_pool.len()) as u64;
    assert!(
        report.served_total >= expected_served,
        "drain must account for every completed response: served {} < expected {}",
        report.served_total,
        expected_served
    );

    // Throughput gate — a measurement, noisy on shared runners; CI smoke
    // passes a low bar and records the number as trajectory data.
    if min_throughput > 0.0 {
        assert!(
            closed_qps >= min_throughput,
            "closed-loop throughput {closed_qps:.1} q/s below the {min_throughput:.1} q/s bar"
        );
    }

    let mut json = JsonObj::new()
        .u64("pr", 10)
        .str("experiment", "serve")
        .str(
            "description",
            "network serving harness: closed-loop and open-loop (fixed-rate, \
             coordinated-omission-aware) load over the versioned wire protocol with \
             mixed tenants and update churn, equivalence-gated against in-process \
             query_blocking before and after the churn",
        )
        .str("dataset", "enron")
        .f64("scale", opts.scale)
        .u64("seed", opts.seed)
        .u64("protocol_version", u64::from(gsi::server::PROTOCOL_VERSION))
        .u64("clients", clients as u64)
        .obj(
            "equivalence",
            JsonObj::new()
                .u64("gate_queries", 2 * gate_pool.len() as u64)
                .u64("pre_churn_matches", gate_matches)
                .u64("post_churn_matches", regate_matches)
                .bool("bit_identical", true),
        )
        .obj(
            "closed_loop",
            JsonObj::new()
                .u64("queries", closed_n as u64)
                .f64("throughput_qps", closed_qps)
                .f64("p50_ms", ms(closed_pct.p50))
                .f64("p99_ms", ms(closed_pct.p99))
                .f64("p999_ms", ms(closed_pct.p999))
                .u64("busy_retries", closed.busy),
        );
    for (i, (offered, achieved, pct, busy)) in sweep.iter().enumerate() {
        json = json.obj(
            &format!("open_loop_{i}"),
            JsonObj::new()
                .f64("offered_qps", *offered)
                .f64("achieved_qps", *achieved)
                .f64("p50_ms", ms(pct.p50))
                .f64("p99_ms", ms(pct.p99))
                .f64("p999_ms", ms(pct.p999))
                .u64("busy_retries", *busy),
        );
    }
    let json = json
        .f64("saturation_knee_qps", knee_qps)
        .bool("knee_saturated_in_sweep", knee_found)
        .obj(
            "update_churn",
            JsonObj::new()
                .u64("batches_applied", churn_batches)
                .u64("final_epoch", churn_epoch),
        )
        .obj(
            "drain",
            JsonObj::new()
                .u64("served_total", report.served_total)
                .u64("connections_drained", report.connections_drained as u64)
                .bool("zero_dropped", true),
        )
        .f64("min_throughput_qps", min_throughput)
        .bool("throughput_gate_passed", true);
    json.write(out_path).expect("write bench report");
    println!("wrote {out_path}");
}
