//! Machine-readable experiment reports — the repo's perf trajectory.
//!
//! Each PR that changes a hot path appends a `BENCH_PR<N>.json` artifact at
//! the repo root (and CI uploads a freshly measured copy per run), so the
//! series of files records how performance moves over time. The writer here
//! is a deliberately tiny hand-rolled JSON builder: the workspace is
//! hermetic (no serde), and the reports are flat objects.

/// Builder for one JSON object, preserving field insertion order.
#[derive(Debug, Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JsonObj {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn raw(mut self, key: &str, value: String) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Add a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let v = format!("\"{}\"", escape(value));
        self.raw(key, v)
    }

    /// Add an integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    /// Add a float field (3 decimals — report precision).
    pub fn f64(self, key: &str, value: f64) -> Self {
        let v = if value.is_finite() {
            format!("{value:.3}")
        } else {
            "null".to_string()
        };
        self.raw(key, v)
    }

    /// Add a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, value.to_string())
    }

    /// Add a nested object.
    pub fn obj(self, key: &str, value: JsonObj) -> Self {
        let v = value.render(1);
        self.raw(key, v)
    }

    fn render(&self, depth: usize) -> String {
        let pad = "  ".repeat(depth);
        let inner = self
            .fields
            .iter()
            .map(|(k, v)| format!("{pad}  \"{}\": {}", escape(k), v))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n{inner}\n{pad}}}")
    }

    /// Serialize with a trailing newline.
    pub fn to_json(&self) -> String {
        format!("{}\n", self.render(0))
    }

    /// Write the object to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ordered_nested_json() {
        let j = JsonObj::new()
            .str("name", "backend \"scaling\"")
            .u64("threads", 4)
            .f64("speedup", 2.5)
            .bool("exact", true)
            .obj("inner", JsonObj::new().u64("x", 1));
        let s = j.to_json();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"name\": \"backend \\\"scaling\\\"\""));
        assert!(s.contains("\"threads\": 4"));
        assert!(s.contains("\"speedup\": 2.500"));
        assert!(s.contains("\"exact\": true"));
        assert!(s.contains("\"inner\": {"));
        assert!(s.contains("\"x\": 1"));
        // Order preserved.
        assert!(s.find("name").unwrap() < s.find("threads").unwrap());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let s = JsonObj::new().f64("bad", f64::NAN).to_json();
        assert!(s.contains("\"bad\": null"));
    }
}
