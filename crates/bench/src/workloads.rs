//! Workload construction: datasets at harness scales and query batches.

use gsi::datasets::{build, DatasetKind, DatasetSpec};
use gsi::graph::query_gen::{random_walk_query, random_walk_query_with_edges};
use gsi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: dataset kind, scale bits, seed.
type DatasetKey = (DatasetKind, u64, u64);

/// Memoized dataset builds: experiments re-request the same spec many
/// times, and generation dominates harness start-up otherwise.
fn dataset_cache() -> &'static Mutex<HashMap<DatasetKey, Arc<Graph>>> {
    static CACHE: OnceLock<Mutex<HashMap<DatasetKey, Arc<Graph>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Global harness options shared by every experiment.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Multiplier on each dataset's default harness scale (1.0 = defaults;
    /// larger approaches the paper's full sizes).
    pub scale: f64,
    /// Queries per configuration (the paper uses 100; the default trades
    /// that for runtime).
    pub queries: usize,
    /// Query size `|V(Q)|` (the paper's default is 12).
    pub query_size: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Per-query timeout for engines, milliseconds.
    pub timeout_ms: u64,
    /// Per-query timeout for the CPU backtracking baselines, milliseconds
    /// (they time out on every large dataset in the paper too).
    pub cpu_timeout_ms: u64,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        Self {
            scale: 1.0,
            queries: 5,
            query_size: 12,
            seed: 42,
            // The paper's threshold is 100 s on a Titan XP; at the harness's
            // reduced scales 30 s is equally decisive and keeps the full
            // reproduction bounded. Restore with --timeout 100000.
            timeout_ms: 30_000,
            cpu_timeout_ms: 10_000,
        }
    }
}

impl HarnessOpts {
    /// The effective dataset spec for a kind under these options.
    pub fn spec(&self, kind: DatasetKind) -> DatasetSpec {
        DatasetSpec::scaled(kind, kind.default_scale() * self.scale)
    }

    /// Build (or fetch from the in-process cache) the dataset for a kind.
    pub fn dataset(&self, kind: DatasetKind) -> Arc<Graph> {
        let spec = self.spec(kind);
        let key = (kind, spec.scale.to_bits(), spec.seed);
        if let Some(g) = dataset_cache().lock().expect("cache poisoned").get(&key) {
            return Arc::clone(g);
        }
        let g = Arc::new(build(&spec));
        dataset_cache()
            .lock()
            .expect("cache poisoned")
            .insert(key, Arc::clone(&g));
        g
    }

    /// Per-query timeout.
    pub fn timeout(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.timeout_ms)
    }

    /// Per-query timeout for CPU backtracking baselines.
    pub fn cpu_timeout(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.cpu_timeout_ms)
    }

    /// A batch of random-walk queries over `data` (paper §VII-A). Queries
    /// that cannot be generated (tiny scaled graphs) are skipped; at least
    /// one query is guaranteed by falling back to smaller sizes.
    pub fn query_batch(&self, data: &Graph) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.queries);
        for _ in 0..self.queries {
            if let Some(q) = random_walk_query(data, self.query_size, &mut rng) {
                out.push(q);
            }
        }
        let mut fallback = self.query_size;
        while out.is_empty() && fallback > 2 {
            fallback -= 2;
            if let Some(q) = random_walk_query(data, fallback, &mut rng) {
                out.push(q);
            }
        }
        assert!(!out.is_empty(), "could not generate any query");
        out
    }

    /// Queries with an explicit `(|V(Q)|, min |E(Q)|)` shape (Fig. 15).
    pub fn shaped_query_batch(&self, data: &Graph, nv: usize, ne: usize) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x000F_1615);
        let mut out = Vec::new();
        let mut attempts = 0;
        while out.len() < self.queries && attempts < self.queries * 8 {
            attempts += 1;
            if let Some(q) = random_walk_query_with_edges(data, nv, ne, &mut rng) {
                out.push(q);
            }
        }
        out
    }
}

/// Build a gowalla-like graph with an explicit number of vertex/edge labels
/// (Fig. 14 sweeps label counts at fixed structure).
pub fn gowalla_with_labels(opts: &HarnessOpts, n_vlabels: usize, n_elabels: usize) -> Graph {
    use gsi::graph::generate::{barabasi_albert, LabelModel};
    let spec = opts.spec(DatasetKind::Gowalla);
    let (n_v, n_e, _, _) = spec.targets();
    let model = LabelModel::zipf(n_vlabels, n_elabels, 1.0);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    barabasi_albert(n_v, (n_e / n_v).max(1), &model, &mut rng)
}

/// The WatDiv scalability series of Fig. 13: `steps` graphs growing
/// linearly (watdiv10M … watdiv100M in the paper).
pub fn watdiv_series(opts: &HarnessOpts, steps: usize) -> Vec<(String, Graph)> {
    (1..=steps)
        .map(|i| {
            let scale = DatasetKind::WatDiv.default_scale() * opts.scale * i as f64;
            let spec = DatasetSpec::scaled(DatasetKind::WatDiv, scale);
            let g = build(&spec);
            (format!("watdiv{}0M", i), g)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> HarnessOpts {
        HarnessOpts {
            scale: 0.05,
            queries: 2,
            query_size: 4,
            ..Default::default()
        }
    }

    #[test]
    fn datasets_build_at_harness_scale() {
        let opts = tiny_opts();
        let g = opts.dataset(DatasetKind::Enron);
        assert!(g.n_vertices() > 100);
    }

    #[test]
    fn query_batches_are_nonempty_and_sized() {
        let opts = tiny_opts();
        let g = opts.dataset(DatasetKind::Enron);
        let qs = opts.query_batch(&g);
        assert!(!qs.is_empty());
        for q in &qs {
            assert!(q.is_connected());
        }
    }

    #[test]
    fn label_sweep_graph_has_requested_universe() {
        let opts = tiny_opts();
        let g = gowalla_with_labels(&opts, 20, 40);
        assert!(g.n_vertex_labels() <= 20);
        assert!(g.n_edge_labels() <= 40);
    }

    #[test]
    fn watdiv_series_grows() {
        let opts = HarnessOpts {
            scale: 0.05,
            ..tiny_opts()
        };
        let series = watdiv_series(&opts, 3);
        assert_eq!(series.len(), 3);
        assert!(series[0].1.n_edges() < series[2].1.n_edges());
        assert_eq!(series[0].0, "watdiv10M");
    }
}
