//! Table formatting helpers for the reproduction harness.

/// Human-size a count the way the paper's tables do (1.7K, 2.2M, …).
pub fn human(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.0}M", n as f64 / 1e6)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.0}K", n as f64 / 1e3)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Milliseconds with the paper's precision (28, 69, 456, 1.3K, 43K …).
pub fn ms(d: std::time::Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 10_000.0 {
        format!("{:.0}K", ms / 1e3)
    } else if ms >= 1_000.0 {
        format!("{:.1}K", ms / 1e3)
    } else if ms >= 10.0 {
        format!("{:.0}", ms)
    } else {
        format!("{:.2}", ms)
    }
}

/// A percentage drop `old → new`.
pub fn drop_pct(old: u64, new: u64) -> String {
    if old == 0 {
        return "-".to_string();
    }
    format!(
        "{:.0}%",
        100.0 * (old.saturating_sub(new)) as f64 / old as f64
    )
}

/// A speedup factor `old / new`.
pub fn speedup(old: std::time::Duration, new: std::time::Duration) -> String {
    let d = new.as_secs_f64();
    if d <= 0.0 {
        return "-".to_string();
    }
    format!("{:.1}x", old.as_secs_f64() / d)
}

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths = vec![0usize; n];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn human_sizes() {
        assert_eq!(human(999), "999");
        assert_eq!(human(1_700), "1.7K");
        assert_eq!(human(29_000), "29K");
        assert_eq!(human(2_200_000), "2.2M");
        assert_eq!(human(170_000_000), "170M");
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(28)), "28");
        assert_eq!(ms(Duration::from_millis(1_300)), "1.3K");
        assert_eq!(ms(Duration::from_millis(43_000)), "43K");
        assert_eq!(ms(Duration::from_micros(500)), "0.50");
    }

    #[test]
    fn drops_and_speedups() {
        assert_eq!(drop_pct(100, 70), "30%");
        assert_eq!(drop_pct(0, 5), "-");
        assert_eq!(
            speedup(Duration::from_millis(200), Duration::from_millis(100)),
            "2.0x"
        );
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "bbb"]);
        t.row(vec!["1", "2"]);
        let s = t.render();
        assert!(s.contains("a  bbb"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }
}
