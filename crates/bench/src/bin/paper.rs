//! `paper` — regenerate every table and figure of the GSI paper.
//!
//! ```text
//! paper <experiment> [options]
//!
//! experiments:
//!   table2 table3 table4 table5 table6 table7 table8 table9 table10 table11
//!   fig12 fig13 fig14 fig15 all
//!   backend            (repo perf trajectory: serial vs host-parallel join
//!                       execution; writes BENCH_PR2.json)
//!   update-churn       (repo perf trajectory: interleaved mutations +
//!                       queries, incremental re-prepare vs full rebuild;
//!                       writes BENCH_PR3.json)
//!   batch              (repo perf trajectory: inter-query batched execution
//!                       with shared candidate filtering vs per-query serial
//!                       runs at 8/16/32 concurrent queries, equivalence-
//!                       gated; writes BENCH_PR4.json)
//!   optimize           (repo perf trajectory: cost-based join ordering vs
//!                       the greedy heuristic on a skewed-label workload,
//!                       equivalence-gated on deterministic device counters;
//!                       writes BENCH_PR5.json)
//!   observe            (repo perf trajectory: per-query tracing overhead —
//!                       baseline vs TraceConfig::Off vs TraceConfig::On on
//!                       the PR 2 and PR 5 join workloads, equivalence-gated
//!                       on match tables and device counters, plus a traced
//!                       service-layer pass over the metrics exporters and
//!                       flight recorder; writes BENCH_PR6.json)
//!   setops             (repo perf trajectory: vectorized set-op kernels vs
//!                       the scalar reference — bit-identical outputs and
//!                       device counters, Melem/s throughput, wall speedup
//!                       gated — plus the radix-hash join strategy vs
//!                       Prealloc-Combine / two-step on a high-multiplicity
//!                       workload, equivalence-gated with a deterministic
//!                       GLD-cut bar; writes BENCH_PR7.json)
//!   adapt              (repo perf trajectory: adaptive mid-query re-planning
//!                       vs replayed stale cost-based plans on a
//!                       correlated-label workload under concept drift,
//!                       equivalence-gated on canonical match tables and
//!                       deterministic device counters; writes BENCH_PR8.json)
//!   serve              (repo perf trajectory: network serving over the wire
//!                       protocol — closed-loop and open-loop fixed-rate load
//!                       with mixed tenants and update churn, p50/p99/p999,
//!                       saturation knee, equivalence-gated against
//!                       in-process query_blocking; writes BENCH_PR10.json)
//!
//! options:
//!   --scale <f64>      multiplier on the default dataset scales (default 1.0)
//!   --queries <n>      queries per configuration (default 5; the paper uses 100)
//!   --query-size <n>   |V(Q)| (default 12, the paper's default)
//!   --seed <n>         RNG seed (default 42)
//!   --timeout <ms>     per-query timeout for GPU engines (default 100000)
//!   --cpu-timeout <ms> per-query timeout for CPU baselines (default 10000)
//!   --threads <n>      host-parallel backend workers (backend only, default 4)
//!   --latency <ns>     modeled memory latency per streamed element
//!                      (backend only, default 100)
//!   --rounds <n>       mutation rounds (update-churn only, default 8)
//!   --batch <n>        ops per mutation batch (update-churn only, default 32)
//!   --pool <n>         recurring-pattern pool size (batch only, default 4)
//!   --min-speedup <f>  required wall-clock speedup: shared filtering at 16
//!                      concurrent queries (batch, default 1.3), costed
//!                      join orders (optimize, default 1.5), vectorized
//!                      set-op kernels (setops, default 1.5), or adaptive
//!                      re-planning (adapt, default 1.3); 0 disables
//!   --min-work-ratio <f> required deterministic join-work ratio: greedy
//!                      over costed (optimize, default 1.5) or stale-static
//!                      over adaptive (adapt)
//!   --max-overhead <f> allowed enabled-tracing join-wall overhead as a
//!                      fraction (observe only, default 0.05); 0 keeps only
//!                      the deterministic counter-equality gates
//!   --clients <n>      concurrent load-generator clients (serve only,
//!                      default 4)
//!   --min-throughput <f> required closed-loop throughput in queries/s
//!                      (serve only, default 10; 0 disables — the latency
//!                      percentiles and knee stay informational)
//!   --out <path>       report path (backend: BENCH_PR2.json,
//!                      update-churn: BENCH_PR3.json, batch: BENCH_PR4.json,
//!                      optimize: BENCH_PR5.json, observe: BENCH_PR6.json,
//!                      setops: BENCH_PR7.json, adapt: BENCH_PR8.json,
//!                      serve: BENCH_PR10.json)
//! ```

use gsi_bench::experiments;
use gsi_bench::workloads::HarnessOpts;

fn usage() -> ! {
    eprintln!(
        "usage: paper <table2..table11|fig12..fig15|backend|update-churn|batch|optimize|observe|setops|adapt|serve|all> \
         [--scale F] [--queries N] [--query-size N] [--seed N] \
         [--timeout MS] [--cpu-timeout MS] [--threads N] [--latency NS] \
         [--rounds N] [--batch N] [--pool N] [--min-speedup F] \
         [--min-work-ratio F] [--max-overhead F] [--clients N] \
         [--min-throughput F] [--out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let exp = args[0].clone();
    let mut opts = HarnessOpts::default();
    let mut threads = 4usize;
    let mut latency_ns = 100u64;
    let mut rounds = 8usize;
    let mut batch = 32usize;
    let mut pool = 4usize;
    let mut min_speedup: Option<f64> = None;
    let mut min_work_ratio = 1.5f64;
    let mut max_overhead = 0.05f64;
    let mut clients = 4usize;
    let mut min_throughput = 10.0f64;
    let mut out_path: Option<String> = None;

    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let val = args.get(i + 1).unwrap_or_else(|| usage());
        match flag {
            "--scale" => opts.scale = val.parse().unwrap_or_else(|_| usage()),
            "--queries" => opts.queries = val.parse().unwrap_or_else(|_| usage()),
            "--query-size" => opts.query_size = val.parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = val.parse().unwrap_or_else(|_| usage()),
            "--timeout" => opts.timeout_ms = val.parse().unwrap_or_else(|_| usage()),
            "--cpu-timeout" => opts.cpu_timeout_ms = val.parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val.parse().unwrap_or_else(|_| usage()),
            "--latency" => latency_ns = val.parse().unwrap_or_else(|_| usage()),
            "--rounds" => rounds = val.parse().unwrap_or_else(|_| usage()),
            "--batch" => batch = val.parse().unwrap_or_else(|_| usage()),
            "--pool" => pool = val.parse().unwrap_or_else(|_| usage()),
            "--min-speedup" => min_speedup = Some(val.parse().unwrap_or_else(|_| usage())),
            "--min-work-ratio" => min_work_ratio = val.parse().unwrap_or_else(|_| usage()),
            "--max-overhead" => max_overhead = val.parse().unwrap_or_else(|_| usage()),
            "--clients" => clients = val.parse().unwrap_or_else(|_| usage()),
            "--min-throughput" => min_throughput = val.parse().unwrap_or_else(|_| usage()),
            "--out" => out_path = Some(val.clone()),
            _ => usage(),
        }
        i += 2;
    }

    println!(
        "GSI reproduction harness — scale x{}, {} queries/config, |V(Q)|={}, seed {}",
        opts.scale, opts.queries, opts.query_size, opts.seed
    );

    match exp.as_str() {
        "table2" => experiments::table2(&opts),
        "table3" => experiments::table3(&opts),
        "table4" => experiments::table4(&opts),
        "table5" => experiments::table5(&opts),
        "table6" => experiments::table6(&opts),
        "table7" => experiments::table7(&opts),
        "table8" => experiments::table8(&opts),
        "table9" => experiments::table9(&opts),
        "table10" => experiments::table10(&opts),
        "table11" => experiments::table11(&opts),
        "fig12" => experiments::fig12(&opts),
        "fig13" => experiments::fig13(&opts),
        "fig14" => experiments::fig14(&opts),
        "fig15" => experiments::fig15(&opts),
        "backend" => experiments::backend(
            &opts,
            threads,
            latency_ns,
            out_path.as_deref().unwrap_or("BENCH_PR2.json"),
        ),
        "update-churn" => experiments::update_churn(
            &opts,
            rounds,
            batch,
            out_path.as_deref().unwrap_or("BENCH_PR3.json"),
        ),
        "batch" => experiments::batch_queries(
            &opts,
            pool,
            min_speedup.unwrap_or(1.3),
            out_path.as_deref().unwrap_or("BENCH_PR4.json"),
        ),
        "optimize" => experiments::optimize(
            &opts,
            min_speedup.unwrap_or(1.5),
            min_work_ratio,
            out_path.as_deref().unwrap_or("BENCH_PR5.json"),
        ),
        "observe" => experiments::observe(
            &opts,
            max_overhead,
            out_path.as_deref().unwrap_or("BENCH_PR6.json"),
        ),
        "setops" => experiments::setops(
            &opts,
            min_speedup.unwrap_or(1.5),
            out_path.as_deref().unwrap_or("BENCH_PR7.json"),
        ),
        "adapt" => experiments::adapt(
            &opts,
            min_speedup.unwrap_or(1.3),
            min_work_ratio,
            out_path.as_deref().unwrap_or("BENCH_PR8.json"),
        ),
        "serve" => gsi_bench::serve::serve(
            &opts,
            clients,
            min_throughput,
            out_path.as_deref().unwrap_or("BENCH_PR10.json"),
        ),
        "all" => experiments::all(&opts),
        _ => usage(),
    }
}
