//! # gsi-bench — reproduction harness for every table and figure
//!
//! The `paper` binary regenerates each experiment of the paper's §VII on the
//! simulated-GPU substrate (see DESIGN.md for the substitution contract):
//!
//! ```text
//! cargo run --release -p gsi-bench --bin paper -- all
//! cargo run --release -p gsi-bench --bin paper -- table6 --queries 10
//! cargo run --release -p gsi-bench --bin paper -- fig13 --scale 2.0
//! ```
//!
//! Criterion micro-benchmarks cover the same comparisons at fixed small
//! sizes (`cargo bench --workspace`).

pub mod experiments;
pub mod fmt;
pub mod report;
pub mod runner;
pub mod serve;
pub mod workloads;
