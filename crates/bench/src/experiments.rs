//! One function per table and figure of the paper's evaluation (§VII).
//!
//! Every function prints the same rows/series the paper reports, measured on
//! the simulated-GPU substrate at the harness scale. Absolute numbers differ
//! from the Titan XP testbed; the *shape* (who wins, by what factor, where
//! crossovers fall) is the reproduction target — EXPERIMENTS.md records the
//! paper-vs-measured comparison.

use crate::fmt::{drop_pct, human, ms, speedup, Table};
use crate::runner::{
    run_cpu_baseline, run_edge_baseline, run_gsi, run_gsi_filter_only, CpuBaseline,
};
use crate::workloads::{gowalla_with_labels, watdiv_series, HarnessOpts};
use gsi::baselines::{gpsm, gunrock};
use gsi::datasets::{statistics, DatasetKind};
use gsi::graph::basic::BasicStore;
use gsi::graph::compressed::CompressedStore;
use gsi::graph::csr::Csr;
use gsi::graph::pcsr::PcsrStore;
use gsi::graph::LabeledStore;
use gsi::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Render an engine cell: mean over completed queries, annotated with the
/// number of timeouts ("12ms (+2T)"), or ">limit" when everything timed out.
fn time_cell(agg: &crate::runner::Aggregate, limit: std::time::Duration) -> String {
    match agg.avg_completed_time() {
        Some(avg) if agg.timeouts == 0 => ms(avg),
        Some(avg) => format!("{} (+{}T)", ms(avg), agg.timeouts),
        None => format!(">{}", ms(limit)),
    }
}

fn section(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Table II: time/space of CSR vs BR vs CR vs PCSR, measured as average GLD
/// transactions per `N(v, l)` extraction — plus the GPN ablation.
pub fn table2(opts: &HarnessOpts) {
    section("Table II — storage structures: transactions per N(v,l) extraction");
    let data = opts.dataset(DatasetKind::Gowalla);
    println!("dataset: gowalla stand-in, {}", statistics(&data));

    // Sample (v, l) pairs that exist.
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut samples = Vec::with_capacity(2_000);
    while samples.len() < 2_000 {
        let v = rng.random_range(0..data.n_vertices()) as u32;
        let nbrs = data.neighbors(v);
        if nbrs.is_empty() {
            continue;
        }
        let (_, l) = nbrs[rng.random_range(0..nbrs.len())];
        samples.push((v, l));
    }

    let gpu = Gpu::new(DeviceConfig::titan_xp());
    let stores: Vec<(&str, Box<dyn LabeledStore>)> = vec![
        ("CSR", Box::new(Csr::build(&data))),
        ("BR", Box::new(BasicStore::build(&data))),
        ("CR", Box::new(CompressedStore::build(&data))),
        ("PCSR", Box::new(PcsrStore::build(&data))),
    ];

    let mut t = Table::new(vec![
        "structure",
        "avg GLD/op",
        "time/2k ops",
        "space (MB)",
        "paper complexity",
    ]);
    for (name, store) in &stores {
        gpu.reset_stats();
        let t0 = std::time::Instant::now();
        let mut total_len = 0usize;
        for &(v, l) in &samples {
            let n = store.neighbors_with_label(&gpu, v, l);
            n.for_each_batch(&gpu, |b| total_len += b.len());
        }
        let elapsed = t0.elapsed();
        let gld = gpu.stats().snapshot().gld_transactions as f64 / samples.len() as f64;
        let complexity = match *name {
            "CSR" => "O(|N(v)|), O(|E|)",
            "BR" => "O(1), O(|E|+|LE||V|)",
            "CR" => "O(log|V(G,l)|), O(|E|)",
            _ => "O(1), O(|E|)",
        };
        t.row(vec![
            name.to_string(),
            format!("{gld:.2}"),
            ms(elapsed),
            format!("{:.1}", store.space_bytes() as f64 / 1e6),
            complexity.to_string(),
        ]);
    }
    t.print();

    println!("\nGPN ablation (PCSR group size; paper fixes 16 = one 128B transaction):");
    let mut t = Table::new(vec!["GPN", "avg GLD/locate", "max chain", "space (MB)"]);
    for gpn in [2usize, 4, 8, 16] {
        let store = PcsrStore::build_with_gpn(&data, gpn);
        gpu.reset_stats();
        for &(v, l) in &samples {
            store.neighbor_count(&gpu, v, l);
        }
        let gld = gpu.stats().snapshot().gld_transactions as f64 / samples.len() as f64;
        t.row(vec![
            gpn.to_string(),
            format!("{gld:.2}"),
            store.max_chain().to_string(),
            format!("{:.1}", store.space_bytes() as f64 / 1e6),
        ]);
    }
    t.print();
}

/// Table III: dataset statistics (generated stand-ins at harness scale,
/// with the paper's full-scale targets alongside).
pub fn table3(opts: &HarnessOpts) {
    section("Table III — dataset statistics (stand-ins at harness scale)");
    let mut t = Table::new(vec![
        "name",
        "|V|",
        "|E|",
        "|LV|",
        "|LE|",
        "MD",
        "paper |V|",
        "paper |E|",
        "paper MD",
    ]);
    for kind in DatasetKind::ALL {
        let g = opts.dataset(kind);
        let s = statistics(&g);
        let (pv, pe, _, _, _) = kind.full_target();
        let paper_md = match kind {
            DatasetKind::Enron => "1.7K",
            DatasetKind::Gowalla => "29K",
            DatasetKind::RoadCentral => "8",
            DatasetKind::DBpedia => "2.2M",
            DatasetKind::WatDiv => "671K",
        };
        t.row(vec![
            kind.name().to_string(),
            human(s.n_vertices as u64),
            human(s.n_edges as u64),
            human(s.n_vertex_labels as u64),
            human(s.n_edge_labels as u64),
            human(s.max_degree as u64),
            human(pv as u64),
            human(pe as u64),
            paper_md.to_string(),
        ]);
    }
    t.print();
}

/// Table IV: filtering strategies — minimum `|C(u)|` and filter time for
/// GpSM, GunrockSM (GSM) and GSI filters.
pub fn table4(opts: &HarnessOpts) {
    section("Table IV — filtering strategies: minimum |C(u)| and time (ms)");
    let mut t = Table::new(vec![
        "dataset", "GpSM |C|", "GSM |C|", "GSI |C|", "GpSM ms", "GSM ms", "GSI ms",
    ]);
    for kind in DatasetKind::ALL {
        let data = opts.dataset(kind);
        let queries = opts.query_batch(&data);
        let mk = |filter| GsiConfig {
            filter,
            ..GsiConfig::gsi_opt()
        };
        let gpsm_f = run_gsi_filter_only(&mk(FilterStrategy::LabelDegree), &data, &queries);
        let gsm_f = run_gsi_filter_only(&mk(FilterStrategy::LabelOnly), &data, &queries);
        let gsi_f = run_gsi_filter_only(&mk(FilterStrategy::Signature), &data, &queries);
        t.row(vec![
            kind.name().to_string(),
            gpsm_f.avg_min_candidate().to_string(),
            gsm_f.avg_min_candidate().to_string(),
            gsi_f.avg_min_candidate().to_string(),
            ms(gpsm_f.avg_filter_time()),
            ms(gsm_f.avg_filter_time()),
            ms(gsi_f.avg_filter_time()),
        ]);
    }
    t.print();
    println!("(paper: GSI reduces min |C(u)| by 10-100x at lower filter time)");
}

/// Table V: tuning the signature length N on gowalla.
pub fn table5(opts: &HarnessOpts) {
    section("Table V — tuning N (signature bits) on gowalla: min |C(u)|");
    let data = opts.dataset(DatasetKind::Gowalla);
    let queries = opts.query_batch(&data);
    let mut t = Table::new(vec!["N", "min |C(u)|", "filter ms"]);
    for n in [64usize, 128, 192, 256, 320, 384, 448, 512] {
        let cfg = GsiConfig {
            signature: SignatureConfig::with_n(n),
            ..GsiConfig::gsi_opt()
        };
        let agg = run_gsi_filter_only(&cfg, &data, &queries);
        t.row(vec![
            n.to_string(),
            agg.avg_min_candidate().to_string(),
            ms(agg.avg_filter_time()),
        ]);
    }
    t.print();
    println!("(paper: 394, 271, 154, 137, 112, 101, 92, 90 — monotone drop, flattening at 512)");
}

/// Table VI: the join-phase technique ladder — GLD and time for GSI-, +DS,
/// +PC, +SO.
pub fn table6(opts: &HarnessOpts) {
    section("Table VI — join techniques: GLD (join phase) and query time");
    let mut gld_t = Table::new(vec![
        "dataset", "GSI-", "+DS", "drop", "+PC", "drop", "+SO", "drop",
    ]);
    let mut time_t = Table::new(vec![
        "dataset", "GSI-", "+DS", "spd", "+PC", "spd", "+SO", "spd",
    ]);
    let mut join_t = Table::new(vec![
        "dataset", "GSI-", "+DS", "spd", "+PC", "spd", "+SO", "spd",
    ]);
    for kind in DatasetKind::ALL {
        let data = opts.dataset(kind);
        let queries = opts.query_batch(&data);
        let base = run_gsi(&GsiConfig::gsi_base(), &data, &queries, opts);
        let ds = run_gsi(&GsiConfig::gsi_ds(), &data, &queries, opts);
        let pc = run_gsi(&GsiConfig::gsi_pc(), &data, &queries, opts);
        let so = run_gsi(&GsiConfig::gsi(), &data, &queries, opts);
        join_t.row(vec![
            kind.name().to_string(),
            ms(base.avg_join_time()),
            ms(ds.avg_join_time()),
            speedup(base.avg_join_time(), ds.avg_join_time()),
            ms(pc.avg_join_time()),
            speedup(ds.avg_join_time(), pc.avg_join_time()),
            ms(so.avg_join_time()),
            speedup(pc.avg_join_time(), so.avg_join_time()),
        ]);
        gld_t.row(vec![
            kind.name().to_string(),
            human(base.avg_join_gld()),
            human(ds.avg_join_gld()),
            drop_pct(base.avg_join_gld(), ds.avg_join_gld()),
            human(pc.avg_join_gld()),
            drop_pct(ds.avg_join_gld(), pc.avg_join_gld()),
            human(so.avg_join_gld()),
            drop_pct(pc.avg_join_gld(), so.avg_join_gld()),
        ]);
        time_t.row(vec![
            kind.name().to_string(),
            ms(base.avg_time()),
            ms(ds.avg_time()),
            speedup(base.avg_time(), ds.avg_time()),
            ms(pc.avg_time()),
            speedup(ds.avg_time(), pc.avg_time()),
            ms(so.avg_time()),
            speedup(pc.avg_time(), so.avg_time()),
        ]);
    }
    println!("global memory load transactions (average per query):");
    gld_t.print();
    println!("\nquery response time (average, ms):");
    time_t.print();
    println!("\njoin-phase time only (average, ms — isolates the techniques at reduced scale):");
    join_t.print();
    println!(
        "(paper: DS ~25-42% GLD drop & 1.4-3.6x; PC ~21-33% & 1.2-2.0x; SO ~5-59% & 1.0-6.3x)"
    );
}

/// Table VII: write-cache ablation — GST and time.
pub fn table7(opts: &HarnessOpts) {
    section("Table VII — write cache: GST (join phase) and query time");
    let mut t = Table::new(vec![
        "dataset",
        "GST no-cache",
        "GST cache",
        "drop",
        "ms no-cache",
        "ms cache",
        "drop",
    ]);
    for kind in DatasetKind::ALL {
        let data = opts.dataset(kind);
        let queries = opts.query_batch(&data);
        let cached = run_gsi(&GsiConfig::gsi(), &data, &queries, opts);
        let uncached = run_gsi(
            &GsiConfig {
                write_cache: false,
                ..GsiConfig::gsi()
            },
            &data,
            &queries,
            opts,
        );
        let dt = |a: std::time::Duration, b: std::time::Duration| {
            if a.as_nanos() == 0 {
                "-".to_string()
            } else {
                format!(
                    "{:.0}%",
                    100.0 * (a.saturating_sub(b)).as_secs_f64() / a.as_secs_f64()
                )
            }
        };
        t.row(vec![
            kind.name().to_string(),
            human(uncached.avg_join_gst()),
            human(cached.avg_join_gst()),
            drop_pct(uncached.avg_join_gst(), cached.avg_join_gst()),
            ms(uncached.avg_time()),
            ms(cached.avg_time()),
            dt(uncached.avg_time(), cached.avg_time()),
        ]);
    }
    t.print();
    println!("(paper: 7-64% GST drop; up to 76% time drop on enron/WatDiv/DBpedia)");
}

/// Table VIII: the optimization ladder — GSI, +LB, +DR times.
pub fn table8(opts: &HarnessOpts) {
    section("Table VIII — optimizations: query time for GSI, +LB, +DR");
    let mut t = Table::new(vec!["dataset", "GSI", "+LB", "spd", "+DR", "spd"]);
    for kind in DatasetKind::ALL {
        let data = opts.dataset(kind);
        let queries = opts.query_batch(&data);
        let gsi = run_gsi(&GsiConfig::gsi(), &data, &queries, opts);
        let lb = run_gsi(&GsiConfig::gsi_lb(), &data, &queries, opts);
        let dr = run_gsi(&GsiConfig::gsi_opt(), &data, &queries, opts);
        t.row(vec![
            kind.name().to_string(),
            ms(gsi.avg_time()),
            ms(lb.avg_time()),
            speedup(gsi.avg_time(), lb.avg_time()),
            ms(dr.avg_time()),
            speedup(lb.avg_time(), dr.avg_time()),
        ]);
    }
    t.print();
    println!("(paper: LB ≥2.7x on WatDiv/DBpedia, 1.0x on small sets; DR 1.1-1.3x)");
}

/// Table IX: tuning W1 on WatDiv.
pub fn table9(opts: &HarnessOpts) {
    section("Table IX — tuning W1 (load balance, W3=256) on WatDiv");
    let data = opts.dataset(DatasetKind::WatDiv);
    let queries = opts.query_batch(&data);
    let mut t = Table::new(vec!["W1", "time (ms)"]);
    for w1 in [2048usize, 3072, 4096, 5120, 6144] {
        let cfg = GsiConfig {
            load_balance: Some(LbParams {
                w1,
                w2: 1024,
                w3: 256,
            }),
            ..GsiConfig::gsi_opt()
        };
        let agg = run_gsi(&cfg, &data, &queries, opts);
        t.row(vec![w1.to_string(), ms(agg.avg_time())]);
    }
    t.print();
    println!("(paper: 2.00K, 1.44K, 1.30K, 2.51K, 3.73K — minimum at 4096)");
}

/// Table X: tuning W3 on WatDiv.
pub fn table10(opts: &HarnessOpts) {
    section("Table X — tuning W3 (load balance, W1=4096) on WatDiv");
    let data = opts.dataset(DatasetKind::WatDiv);
    let queries = opts.query_batch(&data);
    let mut t = Table::new(vec!["W3", "time (ms)"]);
    for w3 in [192usize, 224, 256, 288, 320] {
        let cfg = GsiConfig {
            load_balance: Some(LbParams {
                w1: 4096,
                w2: 1024,
                w3,
            }),
            ..GsiConfig::gsi_opt()
        };
        let agg = run_gsi(&cfg, &data, &queries, opts);
        t.row(vec![w3.to_string(), ms(agg.avg_time())]);
    }
    t.print();
    println!("(paper: 1.40K, 1.35K, 1.30K, 1.61K, 1.92K — shallow minimum at 256)");
}

/// Table XI: duplicate removal — GLD and time detail.
pub fn table11(opts: &HarnessOpts) {
    section("Table XI — duplicate removal: GLD (join) and query time");
    let mut t = Table::new(vec![
        "dataset",
        "GLD with-dup",
        "GLD dedup",
        "drop",
        "ms with-dup",
        "ms dedup",
    ]);
    for kind in DatasetKind::ALL {
        let data = opts.dataset(kind);
        let queries = opts.query_batch(&data);
        let with_dup = run_gsi(&GsiConfig::gsi_lb(), &data, &queries, opts);
        let dedup = run_gsi(&GsiConfig::gsi_opt(), &data, &queries, opts);
        t.row(vec![
            kind.name().to_string(),
            human(with_dup.avg_join_gld()),
            human(dedup.avg_join_gld()),
            drop_pct(with_dup.avg_join_gld(), dedup.avg_join_gld()),
            ms(with_dup.avg_time()),
            ms(dedup.avg_time()),
        ]);
    }
    t.print();
    println!("(paper: 3-23% GLD drop; up to 17% time drop on WatDiv)");
}

/// Fig. 12: overall comparison — VF3, CFL-Match, GpSM, GunrockSM, GSI,
/// GSI-opt on all datasets.
pub fn fig12(opts: &HarnessOpts) {
    section("Fig. 12 — overall comparison: average query time (ms)");
    let mut t = Table::new(vec![
        "dataset",
        "VF3",
        "CFL",
        "GpSM",
        "GunrockSM",
        "GSI",
        "GSI-opt",
    ]);
    for kind in DatasetKind::ALL {
        let data = opts.dataset(kind);
        let queries = opts.query_batch(&data);
        let cell = |agg: &crate::runner::Aggregate| time_cell(agg, opts.cpu_timeout());
        let gcell = |agg: &crate::runner::Aggregate| time_cell(agg, opts.timeout());
        let vf3 = run_cpu_baseline(CpuBaseline::Vf3, &data, &queries, opts);
        let cfl = run_cpu_baseline(CpuBaseline::Cfl, &data, &queries, opts);
        let gp = run_edge_baseline(
            &gpsm::engine(Gpu::new(DeviceConfig::titan_xp())),
            &data,
            &queries,
            opts,
        );
        let gk = run_edge_baseline(
            &gunrock::engine(Gpu::new(DeviceConfig::titan_xp())),
            &data,
            &queries,
            opts,
        );
        let gsi = run_gsi(&GsiConfig::gsi(), &data, &queries, opts);
        let gsi_opt = run_gsi(&GsiConfig::gsi_opt(), &data, &queries, opts);
        t.row(vec![
            kind.name().to_string(),
            cell(&vf3),
            cell(&cfl),
            gcell(&gp),
            gcell(&gk),
            gcell(&gsi),
            gcell(&gsi_opt),
        ]);
    }
    t.print();
    println!("(paper: GPU beats CPU everywhere; GSI ≥23x over GpSM/GunrockSM on WatDiv/DBpedia;");
    println!(" VF3/CFL exceed the 100 s threshold on the large datasets)");
}

/// Fig. 13: scalability on the WatDiv series.
pub fn fig13(opts: &HarnessOpts) {
    section("Fig. 13 — scalability on watdiv10M..100M: average query time (ms)");
    let series = watdiv_series(opts, 10);
    // Scalability needs one point per size, not a deep average; cap the
    // batch so the 10-step sweep stays bounded.
    let opts = &HarnessOpts {
        queries: opts.queries.min(3),
        ..opts.clone()
    };
    let mut t = Table::new(vec!["graph", "|E|", "GpSM", "GunrockSM", "GSI", "GSI-opt"]);
    for (name, data) in &series {
        let queries = opts.query_batch(data);
        let gp = run_edge_baseline(
            &gpsm::engine(Gpu::new(DeviceConfig::titan_xp())),
            data,
            &queries,
            opts,
        );
        let gk = run_edge_baseline(
            &gunrock::engine(Gpu::new(DeviceConfig::titan_xp())),
            data,
            &queries,
            opts,
        );
        let gsi = run_gsi(&GsiConfig::gsi(), data, &queries, opts);
        let gsi_opt = run_gsi(&GsiConfig::gsi_opt(), data, &queries, opts);
        let cell = |agg: &crate::runner::Aggregate| time_cell(agg, opts.timeout());
        t.row(vec![
            name.clone(),
            human(data.n_edges() as u64),
            cell(&gp),
            cell(&gk),
            cell(&gsi),
            cell(&gsi_opt),
        ]);
    }
    t.print();
    println!(
        "(paper: GpSM/GunrockSM rise sharply; GSI-opt is near-linear with the smallest slope)"
    );
}

/// Fig. 14: vary the number of vertex and edge labels on gowalla.
pub fn fig14(opts: &HarnessOpts) {
    section("Fig. 14 — varying |LV| and |LE| on gowalla: GSI-opt time (ms)");
    let mut t = Table::new(vec!["labels", "vary |LV| (LE=100)", "vary |LE| (LV=100)"]);
    for n in [20usize, 40, 60, 80, 100, 120, 140, 160] {
        let gv = gowalla_with_labels(opts, n, 100);
        let qv = opts.query_batch(&gv);
        let av = run_gsi(&GsiConfig::gsi_opt(), &gv, &qv, opts);
        let ge = gowalla_with_labels(opts, 100, n);
        let qe = opts.query_batch(&ge);
        let ae = run_gsi(&GsiConfig::gsi_opt(), &ge, &qe, opts);
        t.row(vec![n.to_string(), ms(av.avg_time()), ms(ae.avg_time())]);
    }
    t.print();
    println!("(paper: time drops as labels grow; |LV| drops sharply then flattens past 100)");
}

/// Fig. 15: vary |E(Q)| at |V(Q)|=12, and |V(Q)| at |E(Q)|=2|V(Q)|.
pub fn fig15(opts: &HarnessOpts) {
    section("Fig. 15 — varying query size on gowalla: GSI-opt time (ms)");
    let data = opts.dataset(DatasetKind::Gowalla);

    // The paper sweeps |E(Q)| up to 26 on real gowalla (clustered core);
    // the synthetic stand-in's 12-vertex regions top out around 16 internal
    // edges, so the sweep covers the feasible range and reports n/a beyond.
    println!("\nvary |E(Q)| at |V(Q)| = 12 (paper range 12..26; stand-in saturates ~16):");
    let mut t = Table::new(vec!["|E(Q)|", "time (ms)", "queries"]);
    for ne in [11usize, 12, 13, 14, 15, 16, 20, 26] {
        let queries = opts.shaped_query_batch(&data, 12, ne);
        if queries.is_empty() {
            t.row(vec![ne.to_string(), "n/a".into(), "0".into()]);
            continue;
        }
        let agg = run_gsi(&GsiConfig::gsi_opt(), &data, &queries, opts);
        t.row(vec![
            ne.to_string(),
            ms(agg.avg_time()),
            queries.len().to_string(),
        ]);
    }
    t.print();

    println!("\nvary |V(Q)| at |E(Q)| = ~1.25|V(Q)| (paper used 2|V|; see note above):");
    let mut t = Table::new(vec!["|V(Q)|", "time (ms)", "queries"]);
    for nv in [8usize, 9, 10, 11, 12, 13, 14, 15] {
        let queries = opts.shaped_query_batch(&data, nv, nv + nv / 4);
        if queries.is_empty() {
            t.row(vec![nv.to_string(), "n/a".into(), "0".into()]);
            continue;
        }
        let agg = run_gsi(&GsiConfig::gsi_opt(), &data, &queries, opts);
        t.row(vec![
            nv.to_string(),
            ms(agg.avg_time()),
            queries.len().to_string(),
        ]);
    }
    t.print();
    println!("(paper: edge growth is cheap, slight drop past 24; vertex growth raises time, flattening past 13)");
}

/// PR 2 perf trajectory — serial vs `HostParallel` execution backend on the
/// join workload (not part of the paper; the repo's own scaling series).
///
/// Both runs use an identical device with one *simulator* worker thread
/// (so the legacy opportunistic threading inside `launch_blocks` cannot
/// blur the comparison) and the memory-latency model enabled at
/// `latency_ns` per streamed element — the regime where a real GPU's SMs
/// earn their parallelism by hiding latency, and where the `HostParallel`
/// backend's overlapping workers show real wall-clock speedup even on a
/// single-core host. Verifies the backends' device counters and match
/// counts are *exactly* equal, then writes the measurements to `out_path`
/// (`BENCH_PR2.json`).
pub fn backend(opts: &HarnessOpts, threads: usize, latency_ns: u64, out_path: &str) {
    use crate::report::JsonObj;
    use crate::runner::run_gsi_on_device;

    section(&format!(
        "Backend scaling — serial vs host-parallel join execution ({threads} threads)"
    ));
    let data = opts.dataset(DatasetKind::Enron);
    println!("dataset: enron stand-in, {}", statistics(&data));
    let queries = opts.query_batch(&data);
    let device = DeviceConfig {
        worker_threads: 1,
        stream_latency_ns: latency_ns,
        ..DeviceConfig::titan_xp()
    };
    let cfg = GsiConfig::gsi_opt();

    let serial = run_gsi_on_device(&cfg, device.clone(), &data, &queries, opts);
    let parallel = run_gsi_on_device(
        &cfg.clone().with_backend(BackendKind::HostParallel, threads),
        device.clone(),
        &data,
        &queries,
        opts,
    );

    // The parallel backend must be *indistinguishable* on everything the
    // simulator measures — only wall clock may move.
    let exact = serial.matches == parallel.matches
        && serial.gld == parallel.gld
        && serial.gst == parallel.gst
        && serial.kernels == parallel.kernels
        && serial.allocs == parallel.allocs
        && serial.join_work_units == parallel.join_work_units;
    assert!(
        exact,
        "parallel backend diverged: {serial:?} vs {parallel:?}"
    );

    let mut t = Table::new(vec![
        "backend", "join", "total", "GLD", "GST", "work", "span", "matches",
    ]);
    for (name, agg) in [("serial", &serial), ("host-parallel", &parallel)] {
        t.row(vec![
            name.to_string(),
            ms(agg.join_time),
            ms(agg.total_time),
            human(agg.join_gld),
            human(agg.join_gst),
            human(agg.join_work_units),
            human(agg.join_span_units),
            agg.matches.to_string(),
        ]);
    }
    t.print();

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let schedule_speedup = serial.join_span_units as f64 / parallel.join_span_units.max(1) as f64;
    println!(
        "join wall speedup: {}   schedule (work/span) speedup: {:.2}x   host cores: {}",
        speedup(serial.join_time, parallel.join_time),
        schedule_speedup,
        host_cores
    );
    println!("device counters: exactly equal across backends");

    let agg_obj = |agg: &crate::runner::Aggregate| {
        JsonObj::new()
            .f64("join_wall_ms", agg.join_time.as_secs_f64() * 1e3)
            .f64("total_wall_ms", agg.total_time.as_secs_f64() * 1e3)
            .u64("join_gld", agg.join_gld)
            .u64("join_gst", agg.join_gst)
            .u64("kernels", agg.kernels)
            .u64("allocs", agg.allocs)
            .u64("work_units", agg.join_work_units)
            .u64("span_units", agg.join_span_units)
            .u64("matches", agg.matches as u64)
            .u64("timeouts", agg.timeouts as u64)
    };
    let report = JsonObj::new()
        .u64("pr", 2)
        .str("experiment", "backend-scaling")
        .str(
            "description",
            "serial vs HostParallel join execution backend, identical device, \
             memory-latency model enabled",
        )
        .str("dataset", "enron")
        .f64("scale", opts.scale)
        .u64("queries", queries.len() as u64)
        .u64("query_size", opts.query_size as u64)
        .u64("seed", opts.seed)
        .u64("threads", threads as u64)
        .u64("host_cores", host_cores as u64)
        .obj(
            "device",
            JsonObj::new()
                .u64("worker_threads", 1)
                .u64("stream_latency_ns_per_element", latency_ns),
        )
        .obj("serial", agg_obj(&serial))
        .obj("host_parallel", agg_obj(&parallel))
        .bool("counters_exactly_equal", exact)
        .obj(
            "speedup",
            JsonObj::new()
                .f64(
                    "join_wall",
                    serial.join_time.as_secs_f64() / parallel.join_time.as_secs_f64().max(1e-12),
                )
                .f64(
                    "total_wall",
                    serial.total_time.as_secs_f64() / parallel.total_time.as_secs_f64().max(1e-12),
                )
                .f64("schedule_work_over_span", schedule_speedup),
        );
    report.write(out_path).expect("write bench report");
    println!("wrote {out_path}");
}

/// PR 3 perf trajectory — dynamic update churn: interleaved mutation
/// batches and queries on an evolving graph, incremental re-prepare
/// (`PreparedData::apply_updates`: PCSR layer splices + touched-vertex
/// signature refresh) vs a cold `prepare_shared` rebuild of the mutated
/// graph (not part of the paper; the repo's own serving trajectory).
///
/// Each round mutates a couple of "hot" edge labels — the delta-locality
/// regime PCSR's layer partitioning was built for — then runs the query
/// batch against *both* preparations, asserting bit-identical match tables
/// and exact device-ledger counters before trusting either wall time.
/// Writes the measurements to `out_path` (`BENCH_PR3.json`).
pub fn update_churn(opts: &HarnessOpts, rounds: usize, batch_size: usize, out_path: &str) {
    use crate::report::JsonObj;
    use gsi::graph::update::UpdateBatch;
    use std::collections::BTreeSet;
    use std::time::{Duration, Instant};

    section(&format!(
        "Update churn — incremental re-prepare vs full rebuild ({rounds} rounds × {batch_size} ops)"
    ));
    let n_elabels = 8usize;
    let mut g = gowalla_with_labels(opts, 4, n_elabels);
    println!(
        "dataset: gowalla stand-in ({n_elabels} edge labels), {}",
        statistics(&g)
    );
    let engine = GsiEngine::with_gpu(
        GsiConfig::gsi_opt(),
        Gpu::new(DeviceConfig {
            worker_threads: 1,
            ..DeviceConfig::titan_xp()
        }),
    );
    let mut prepared = engine.prepare(&g);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let mut t_inc_total = Duration::ZERO;
    let mut t_rebuild_total = Duration::ZERO;
    let mut layers_spliced = 0usize;
    let mut layers_rebuilt = 0usize;
    let mut sigs_refreshed = 0usize;
    let mut queries_checked = 0usize;
    let mut matches_total = 0usize;
    let mut equivalent = true;

    let mut t = Table::new(vec![
        "round",
        "ops",
        "incremental",
        "rebuild",
        "speedup",
        "spliced",
        "rebuilt",
        "queries",
    ]);
    for round in 0..rounds {
        // A mutation batch with delta locality: ops on two hot labels,
        // endpoints drawn mostly from vertices already active in that
        // label (attachment locality — and the regime where the canonical
        // splice applies; a sprinkle of arbitrary endpoints keeps the
        // local-rebuild path honest).
        let hot: Vec<u32> = (0..2)
            .map(|_| rng.random_range(0..n_elabels as u32))
            .collect();
        let mut edges: BTreeSet<(u32, u32, u32)> = g
            .edges()
            .into_iter()
            .filter(|e| hot.contains(&e.label))
            .map(|e| (e.u, e.v, e.label))
            .collect();
        let mut deg: std::collections::HashMap<(u32, u32), usize> = Default::default();
        for &(u, v, l) in &edges {
            *deg.entry((l, u)).or_default() += 1;
            *deg.entry((l, v)).or_default() += 1;
        }
        let present: Vec<Vec<u32>> = hot
            .iter()
            .map(|&l| {
                deg.keys()
                    .filter(|&&(dl, _)| dl == l)
                    .map(|&(_, v)| v)
                    .collect()
            })
            .collect();
        let n = g.n_vertices() as u32;
        let mut batch = UpdateBatch::new();
        for _ in 0..batch_size {
            let roll = rng.random_range(0..10);
            if roll < 3 && !edges.is_empty() {
                // Remove an edge both of whose endpoints keep label-degree
                // ≥ 1 (presence-preserving).
                for _ in 0..8 {
                    let idx = rng.random_range(0..edges.len());
                    let &(u, v, l) = edges.iter().nth(idx).expect("in range");
                    if deg[&(l, u)] >= 2 && deg[&(l, v)] >= 2 {
                        batch.remove_edge(u, v, l);
                        edges.remove(&(u, v, l));
                        *deg.get_mut(&(l, u)).expect("present") -= 1;
                        *deg.get_mut(&(l, v)).expect("present") -= 1;
                        break;
                    }
                }
            } else {
                let li = rng.random_range(0..hot.len());
                let l = hot[li];
                for _ in 0..8 {
                    // 1-in-10 inserts attach an arbitrary vertex (may force
                    // a local layer rebuild); the rest stay label-local.
                    let (u, v) = if roll == 9 || present[li].len() < 2 {
                        (rng.random_range(0..n), rng.random_range(0..n))
                    } else {
                        (
                            present[li][rng.random_range(0..present[li].len())],
                            present[li][rng.random_range(0..present[li].len())],
                        )
                    };
                    let key = (u.min(v), u.max(v), l);
                    if u != v && !g.has_edge(u, v, l) && !edges.contains(&key) {
                        batch.insert_edge(u, v, l);
                        edges.insert(key);
                        *deg.entry((l, u)).or_default() += 1;
                        *deg.entry((l, v)).or_default() += 1;
                        break;
                    }
                }
            }
        }

        // Incremental path: delta re-prepare (includes the logical graph
        // mutation, which the rebuild path gets for free — conservative).
        let t0 = Instant::now();
        let (updated, inc, report) = engine
            .apply_updates(&g, &prepared, &batch)
            .expect("generated batch is valid");
        let t_inc = t0.elapsed();

        // Rebuild path: cold offline phase on the already-mutated graph.
        let t0 = Instant::now();
        let cold = engine.prepare_shared(&updated);
        let t_rebuild = t0.elapsed();

        let store_report = report.store.as_ref().expect("pcsr storage");
        let spliced = store_report.spliced();
        let rebuilt = store_report.rebuilt();
        layers_spliced += spliced;
        layers_rebuilt += rebuilt;
        sigs_refreshed += report.signatures_refreshed.unwrap_or(0);

        // Interleaved queries, against both preparations: equivalence gate.
        let queries = opts.query_batch(&updated);
        for q in &queries {
            let snap0 = engine.gpu().stats().snapshot();
            let a = engine
                .query_with_timeout(&updated, &inc, q, Some(opts.timeout()))
                .expect("plans");
            let snap1 = engine.gpu().stats().snapshot();
            let b = engine
                .query_with_timeout(&updated, &cold, q, Some(opts.timeout()))
                .expect("plans");
            let snap2 = engine.gpu().stats().snapshot();
            equivalent &= a.matches.table == b.matches.table && snap1 - snap0 == snap2 - snap1;
            matches_total += a.matches.len();
            queries_checked += 1;
        }

        t.row(vec![
            round.to_string(),
            batch.len().to_string(),
            ms(t_inc),
            ms(t_rebuild),
            speedup(t_rebuild, t_inc),
            spliced.to_string(),
            rebuilt.to_string(),
            queries.len().to_string(),
        ]);
        t_inc_total += t_inc;
        t_rebuild_total += t_rebuild;
        g = updated;
        prepared = inc;
    }
    t.print();
    assert!(
        equivalent,
        "incremental re-prepare diverged from cold rebuild"
    );
    println!(
        "re-prepare wall: incremental {} vs rebuild {} ({})   layers: {} spliced / {} rebuilt   sigs refreshed: {}",
        ms(t_inc_total),
        ms(t_rebuild_total),
        speedup(t_rebuild_total, t_inc_total),
        layers_spliced,
        layers_rebuilt,
        sigs_refreshed
    );
    println!(
        "equivalence: tables bit-identical, device counters exact over {queries_checked} queries"
    );

    let report = JsonObj::new()
        .u64("pr", 3)
        .str("experiment", "update-churn")
        .str(
            "description",
            "interleaved mutation batches + queries on an evolving graph: \
             incremental PreparedData::apply_updates vs cold prepare_shared \
             rebuild, equivalence-gated",
        )
        .str("dataset", "gowalla")
        .f64("scale", opts.scale)
        .u64("edge_labels", n_elabels as u64)
        .u64("rounds", rounds as u64)
        .u64("batch_size", batch_size as u64)
        .u64("query_size", opts.query_size as u64)
        .u64("seed", opts.seed)
        .obj(
            "incremental",
            JsonObj::new()
                .f64("reprepare_wall_ms", t_inc_total.as_secs_f64() * 1e3)
                .u64("layers_spliced", layers_spliced as u64)
                .u64("layers_rebuilt", layers_rebuilt as u64)
                .u64("signatures_refreshed", sigs_refreshed as u64),
        )
        .obj(
            "rebuild",
            JsonObj::new().f64("reprepare_wall_ms", t_rebuild_total.as_secs_f64() * 1e3),
        )
        .obj(
            "speedup",
            JsonObj::new().f64(
                "reprepare_wall",
                t_rebuild_total.as_secs_f64() / t_inc_total.as_secs_f64().max(1e-12),
            ),
        )
        .obj(
            "equivalence",
            JsonObj::new()
                .bool("tables_bit_identical_and_counters_exact", equivalent)
                .u64("queries_checked", queries_checked as u64)
                .u64("matches_total", matches_total as u64),
        );
    report.write(out_path).expect("write bench report");
    println!("wrote {out_path}");
}

/// PR 4 perf trajectory — inter-query batched execution: a batch of
/// concurrent same-graph queries drawn from a small recurring-pattern pool
/// (the shape real serving workloads have), run once per query through
/// `GsiEngine::query_with_options` and once as a single
/// `GsiEngine::query_batch` with shared candidate filtering (not part of
/// the paper; the repo's own serving trajectory).
///
/// Every concurrency level is equivalence-gated before its wall times are
/// trusted: per-query match tables must be bit-identical, per-query join
/// work exactly equal, and the batch's total device transactions no more
/// than the solo runs' (sharing can only remove filter passes). Writes the
/// measurements to `out_path` (`BENCH_PR4.json`); the 16-query level must
/// clear the `min_speedup_at_16` bar.
pub fn batch_queries(opts: &HarnessOpts, pool: usize, min_speedup_at_16: f64, out_path: &str) {
    use crate::report::JsonObj;
    use gsi::engine::BatchItem;
    use std::time::Instant;

    section(&format!(
        "Batched execution — shared candidate filtering, {pool}-pattern pool"
    ));
    let data = opts.dataset(DatasetKind::Gowalla);
    println!("dataset: gowalla stand-in, {}", statistics(&data));
    // The intermediate-row guard keeps every pool pattern's join bounded.
    // It trips on row *count* — deterministic, identical for solo and
    // batched execution — unlike a wall-clock timeout, which would break
    // the bit-identical equivalence gate.
    let engine = GsiEngine::with_gpu(
        GsiConfig {
            max_intermediate_rows: 10_000,
            ..GsiConfig::gsi_opt()
        },
        Gpu::new(DeviceConfig {
            worker_threads: 1,
            ..DeviceConfig::titan_xp()
        }),
    );
    let prepared = engine.prepare(&data);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Recurring-pattern pool, vetted: a random walk can land in a dense
    // region whose join explodes; such a pattern would drown the filtering
    // phase this experiment isolates (and CI's wall clock with it). Keep
    // only patterns that complete under the row guard.
    let mut patterns: Vec<Graph> = Vec::with_capacity(pool);
    let mut attempts = 0usize;
    while patterns.len() < pool {
        attempts += 1;
        assert!(
            attempts <= 256,
            "could not assemble a join-bounded pattern pool at this scale"
        );
        let Some(q) = gsi::graph::query_gen::random_walk_query(&data, opts.query_size, &mut rng)
        else {
            continue;
        };
        let vet = engine
            .query_with_options(&data, &prepared, &q, QueryOptions::default())
            .expect("random walks are connected");
        if !vet.stats.timed_out {
            patterns.push(q);
        }
    }

    let mut t = Table::new(vec![
        "concurrency",
        "solo wall",
        "batch wall",
        "speedup",
        "reuse rate",
        "matches",
    ]);
    let mut levels = Vec::new();
    let mut speedup_at_16 = 0.0f64;
    for &c in &[8usize, 16, 32] {
        let workload: Vec<&Graph> = (0..c).map(|i| &patterns[i % pool]).collect();

        // Per-query serial reference: each query pays its own filtering.
        let snap0 = engine.gpu().stats().snapshot();
        let t0 = Instant::now();
        let solo: Vec<_> = workload
            .iter()
            .map(|q| {
                engine
                    .query_with_options(&data, &prepared, q, QueryOptions::default())
                    .expect("pool queries are connected")
            })
            .collect();
        let t_solo = t0.elapsed();
        let solo_device = engine.gpu().stats().snapshot() - snap0;

        // Batched: one engine call, filtering shared per distinct demand.
        let snap1 = engine.gpu().stats().snapshot();
        let t0 = Instant::now();
        let items: Vec<BatchItem<'_>> = workload.iter().map(|q| BatchItem::new(q)).collect();
        let batch = engine.query_batch(&data, &prepared, &items);
        let t_batch = t0.elapsed();
        let batch_device = engine.gpu().stats().snapshot() - snap1;

        // Equivalence gate: bit-identical tables, identical join work,
        // and no extra device transactions from batching.
        let mut matches_total = 0usize;
        for (i, (b, s)) in batch.results.iter().zip(&solo).enumerate() {
            let b = b.as_ref().expect("solo run planned the same query");
            assert_eq!(
                b.matches.table, s.matches.table,
                "c={c} query {i}: batched table diverged"
            );
            assert_eq!(
                b.stats.join_work_units, s.stats.join_work_units,
                "c={c} query {i}: join work diverged"
            );
            matches_total += b.matches.len();
        }
        // Deterministic win gates (device-ledger counters, immune to CI
        // timing noise): every repeated demand must actually be shared,
        // and shared passes must remove device work.
        assert!(
            c <= pool || batch.filter_demands_reused > 0,
            "c={c}: a {pool}-pattern pool must produce demand reuse"
        );
        if batch.filter_demands_reused > 0 {
            assert!(
                batch_device.gld_transactions < solo_device.gld_transactions,
                "c={c}: shared filter passes must remove device work \
                 ({} vs {} GLD)",
                batch_device.gld_transactions,
                solo_device.gld_transactions
            );
        } else {
            assert!(
                batch_device.gld_transactions <= solo_device.gld_transactions,
                "c={c}: batching must never add device work"
            );
        }

        let speedup_wall = t_solo.as_secs_f64() / t_batch.as_secs_f64().max(1e-12);
        if c == 16 {
            speedup_at_16 = speedup_wall;
        }
        t.row(vec![
            c.to_string(),
            ms(t_solo),
            ms(t_batch),
            speedup(t_solo, t_batch),
            format!("{:.0}%", batch.filter_reuse_rate() * 100.0),
            matches_total.to_string(),
        ]);
        levels.push((
            c,
            JsonObj::new()
                .u64("concurrency", c as u64)
                .f64("solo_wall_ms", t_solo.as_secs_f64() * 1e3)
                .f64("batch_wall_ms", t_batch.as_secs_f64() * 1e3)
                .f64("speedup_wall", speedup_wall)
                .u64("solo_gld", solo_device.gld_transactions)
                .u64("batch_gld", batch_device.gld_transactions)
                .u64("filter_demands_computed", batch.filter_demands_computed)
                .u64("filter_demands_reused", batch.filter_demands_reused)
                .f64("filter_reuse_rate", batch.filter_reuse_rate())
                .u64("matches", matches_total as u64)
                .bool("equivalent", true),
        ));
    }
    t.print();
    println!("equivalence: tables bit-identical, join work exact, device GLD strictly lower");
    println!("speedup at 16 concurrent queries: {speedup_at_16:.2}x (bar: {min_speedup_at_16}x)");
    // The wall-clock bar is a *measurement*, noisy on shared CI runners;
    // pass `--min-speedup 0` to keep only the deterministic counter gates
    // above and record the speedup as informational.
    assert!(
        speedup_at_16 >= min_speedup_at_16,
        "shared filtering must win >= {min_speedup_at_16}x at 16 concurrent queries \
         (got {speedup_at_16:.2}x)"
    );

    let mut report = JsonObj::new()
        .u64("pr", 4)
        .str("experiment", "batched-execution")
        .str(
            "description",
            "inter-query batched execution with shared candidate filtering vs \
             per-query serial runs, equivalence-gated (bit-identical tables, \
             exact join work)",
        )
        .str("dataset", "gowalla")
        .f64("scale", opts.scale)
        .u64("pattern_pool", pool as u64)
        .u64("query_size", opts.query_size as u64)
        .u64("seed", opts.seed)
        .f64("min_speedup_at_16", min_speedup_at_16)
        .f64("speedup_at_16", speedup_at_16);
    for (c, level) in levels {
        report = report.obj(&format!("level_{c}"), level);
    }
    report.write(out_path).expect("write bench report");
    println!("wrote {out_path}");
}

/// Build the skewed-label workload for the `optimize` experiment: a few
/// "anchor" vertices (label A) fan out over a *dense* edge class to a large
/// B population, while rare edge classes connect B→C→D. Greedy planning
/// (Algorithm 2) seeds at the smallest `|C(u)|/deg(u)` score — the anchor —
/// and is then forced to expand through the dense A–B class before any rare
/// edge can prune; a cost-based order enters from the rare side and keeps
/// every intermediate table small.
fn skewed_graph(scale: f64, seed: u64) -> Graph {
    use gsi::graph::GraphBuilder;
    let n_a = 8usize;
    let n_b = ((3000.0 * scale) as usize).max(60);
    let n_c = ((150.0 * scale) as usize).max(12);
    let n_d = ((30.0 * scale) as usize).max(6);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0001_5EED);
    let mut b = GraphBuilder::new();
    let a: Vec<u32> = (0..n_a).map(|_| b.add_vertex(0)).collect();
    let bs: Vec<u32> = (0..n_b).map(|_| b.add_vertex(1)).collect();
    let cs: Vec<u32> = (0..n_c).map(|_| b.add_vertex(2)).collect();
    let ds: Vec<u32> = (0..n_d).map(|_| b.add_vertex(3)).collect();
    // Dense class 0: every B touches one or two anchors.
    for &vb in &bs {
        let first = a[rng.random_range(0..n_a)];
        b.add_edge(first, vb, 0);
        if rng.random_range(0..2) == 0 {
            let second = a[(first as usize + 1 + rng.random_range(0..(n_a - 1))) % n_a];
            b.add_edge(second, vb, 0);
        }
    }
    // Rare class 1: each C reaches two distinct Bs.
    for (i, &vc) in cs.iter().enumerate() {
        b.add_edge(bs[(i * 7) % n_b], vc, 1);
        b.add_edge(bs[(i * 7 + 3) % n_b], vc, 1);
    }
    // Rare class 2: each D reaches two distinct Cs.
    for (i, &vd) in ds.iter().enumerate() {
        b.add_edge(cs[(i * 5) % n_c], vd, 2);
        b.add_edge(cs[(i * 5 + 2) % n_c], vd, 2);
    }
    b.build()
}

/// The recurring patterns of the skewed workload. Every pattern contains
/// an anchor vertex whose tiny candidate set baits the greedy seed.
fn skewed_patterns() -> Vec<(&'static str, Graph)> {
    use gsi::graph::GraphBuilder;
    // a(A) -0- b(B) -1- c(C)
    let mut qb = GraphBuilder::new();
    let qa = qb.add_vertex(0);
    let qbv = qb.add_vertex(1);
    let qc = qb.add_vertex(2);
    qb.add_edge(qa, qbv, 0);
    qb.add_edge(qbv, qc, 1);
    let path3 = qb.build();

    // a(A) -0- b(B) -1- c(C) -2- d(D)
    let mut qb = GraphBuilder::new();
    let qa = qb.add_vertex(0);
    let qbv = qb.add_vertex(1);
    let qc = qb.add_vertex(2);
    let qd = qb.add_vertex(3);
    qb.add_edge(qa, qbv, 0);
    qb.add_edge(qbv, qc, 1);
    qb.add_edge(qc, qd, 2);
    let path4 = qb.build();

    // Y-shape: two anchors off one B, which reaches a C.
    let mut qb = GraphBuilder::new();
    let qa1 = qb.add_vertex(0);
    let qa2 = qb.add_vertex(0);
    let qbv = qb.add_vertex(1);
    let qc = qb.add_vertex(2);
    qb.add_edge(qa1, qbv, 0);
    qb.add_edge(qa2, qbv, 0);
    qb.add_edge(qbv, qc, 1);
    let y = qb.build();

    vec![("path3", path3), ("path4", path4), ("fork", y)]
}

/// PR 5 perf trajectory — cost-based join ordering: the same skewed-label
/// workload planned by Algorithm 2's greedy heuristic and by the
/// statistics-driven cost-based optimizer, executed on one engine and one
/// prepared graph (not part of the paper; the repo's own serving
/// trajectory).
///
/// Gates, strongest first: (1) **determinism** — each (pattern, planner)
/// pair runs twice and must charge exactly equal device counters and
/// produce bit-identical tables; (2) **equivalence** — greedy and costed
/// runs must produce bit-identical *canonical* match tables (same rows,
/// vertex-indexed, sorted; the join orders differ by design); (3) the
/// costed orders must win by at least `min_work_ratio` on join work units
/// (deterministic, timing-immune); (4) the join wall-clock win must clear
/// `min_speedup` (a measurement — CI passes 0 and keeps gates 1–3).
/// Writes BENCH_PR5.json.
pub fn optimize(opts: &HarnessOpts, min_speedup: f64, min_work_ratio: f64, out_path: &str) {
    use crate::report::JsonObj;
    use std::time::Duration;

    section("Cost-based join ordering — greedy vs costed on a skewed-label workload");
    let data = skewed_graph(opts.scale, opts.seed);
    println!("dataset: skewed-label synthetic, {}", statistics(&data));
    // The memory-latency model (as in the `backend` experiment) makes the
    // join wall clock track streamed elements — the quantity a real GPU's
    // memory system pays for — instead of host-side fixed overheads that
    // vanish at production scale.
    let engine = GsiEngine::with_gpu(
        GsiConfig::gsi_opt(),
        Gpu::new(DeviceConfig {
            worker_threads: 1,
            stream_latency_ns: 100,
            ..DeviceConfig::titan_xp()
        }),
    );
    let prepared = engine.prepare(&data);
    let patterns = skewed_patterns();

    // One measured, determinism-checked run per (pattern, planner); wall
    // times come from the run's own `stats.join_time` (the warmed-up
    // second repetition is the one kept).
    let run = |q: &Graph, planner: PlannerKind| {
        let mut table = None;
        let mut device = None;
        let mut out = None;
        for rep in 0..2 {
            let snap0 = engine.gpu().stats().snapshot();
            let o = engine
                .query_with_options(
                    &data,
                    &prepared,
                    q,
                    QueryOptions {
                        planner: Some(planner),
                        ..QueryOptions::default()
                    },
                )
                .expect("skewed patterns are connected");
            let delta = engine.gpu().stats().snapshot() - snap0;
            assert!(!o.stats.timed_out, "workload must complete");
            match (&table, &device) {
                (None, None) => {
                    table = Some(o.matches.table.clone());
                    device = Some(delta);
                }
                (Some(t), Some(d)) => {
                    assert_eq!(t, &o.matches.table, "rep {rep}: non-deterministic table");
                    assert_eq!(d, &delta, "rep {rep}: non-deterministic device counters");
                }
                _ => unreachable!(),
            }
            out = Some(o);
        }
        (out.expect("ran"), device.expect("ran"))
    };

    let mut t = Table::new(vec![
        "pattern",
        "matches",
        "greedy work",
        "costed work",
        "ratio",
        "greedy wall",
        "costed wall",
        "spd",
    ]);
    let mut pattern_reports = Vec::new();
    let mut greedy_wall_total = Duration::ZERO;
    let mut costed_wall_total = Duration::ZERO;
    let (mut greedy_work_total, mut costed_work_total) = (0u64, 0u64);
    for (name, q) in &patterns {
        let (g_out, g_dev) = run(q, PlannerKind::Greedy);
        let (c_out, c_dev) = run(q, PlannerKind::CostBased);
        assert_eq!(g_out.planner, PlannerKind::Greedy);
        assert_eq!(c_out.planner, PlannerKind::CostBased);

        // Equivalence gate: identical canonical match tables — the orders
        // (and so the raw column layouts) differ by design.
        assert_eq!(
            g_out.matches.canonical(),
            c_out.matches.canonical(),
            "{name}: planners disagree on the match set"
        );

        let work_ratio =
            g_out.stats.join_work_units as f64 / c_out.stats.join_work_units.max(1) as f64;
        t.row(vec![
            name.to_string(),
            c_out.matches.len().to_string(),
            human(g_out.stats.join_work_units),
            human(c_out.stats.join_work_units),
            format!("{work_ratio:.1}x"),
            ms(g_out.stats.join_time),
            ms(c_out.stats.join_time),
            speedup(g_out.stats.join_time, c_out.stats.join_time),
        ]);
        greedy_wall_total += g_out.stats.join_time;
        costed_wall_total += c_out.stats.join_time;
        greedy_work_total += g_out.stats.join_work_units;
        costed_work_total += c_out.stats.join_work_units;

        let side = |out: &QueryOutput, dev: &gsi::sim::StatsSnapshot| {
            JsonObj::new()
                .f64("join_wall_ms", out.stats.join_time.as_secs_f64() * 1e3)
                .u64("join_work_units", out.stats.join_work_units)
                .u64("gld", dev.gld_transactions)
                .u64(
                    "max_intermediate_rows",
                    out.stats.max_intermediate_rows as u64,
                )
                .u64("matches", out.matches.len() as u64)
                .str("order", &format!("{:?}", out.plan.order))
                .f64("q_error", out.explain.mean_q_error().unwrap_or(f64::NAN))
        };
        pattern_reports.push((
            name.to_string(),
            JsonObj::new()
                .obj("greedy", side(&g_out, &g_dev))
                .obj("costed", side(&c_out, &c_dev))
                .f64("work_ratio", work_ratio)
                .f64(
                    "speedup_wall",
                    g_out.stats.join_time.as_secs_f64()
                        / c_out.stats.join_time.as_secs_f64().max(1e-12),
                )
                .bool("equivalent", true),
        ));
    }
    t.print();

    let work_ratio = greedy_work_total as f64 / costed_work_total.max(1) as f64;
    let wall_speedup = greedy_wall_total.as_secs_f64() / costed_wall_total.as_secs_f64().max(1e-12);
    println!(
        "aggregate join work: greedy {} vs costed {} ({work_ratio:.2}x, deterministic)",
        human(greedy_work_total),
        human(costed_work_total)
    );
    println!(
        "aggregate join wall: greedy {} vs costed {} ({wall_speedup:.2}x, bar {min_speedup}x)",
        ms(greedy_wall_total),
        ms(costed_wall_total)
    );
    println!("equivalence: canonical tables bit-identical, repeated runs charge exact counters");
    assert!(
        work_ratio >= min_work_ratio,
        "cost-based orders must cut join work >= {min_work_ratio}x (got {work_ratio:.2}x)"
    );
    // The wall bar is a measurement, noisy on shared CI runners; pass
    // `--min-speedup 0` to keep only the deterministic gates above.
    assert!(
        wall_speedup >= min_speedup,
        "cost-based orders must win >= {min_speedup}x join wall (got {wall_speedup:.2}x)"
    );

    let mut report = JsonObj::new()
        .u64("pr", 5)
        .str("experiment", "optimize")
        .str(
            "description",
            "statistics-driven cost-based join ordering vs Algorithm 2's greedy \
             heuristic on a skewed-label workload, equivalence-gated (canonical \
             tables bit-identical, device counters deterministic)",
        )
        .str("dataset", "skewed-label synthetic")
        .f64("scale", opts.scale)
        .u64("seed", opts.seed)
        .u64("patterns", patterns.len() as u64)
        .f64("min_speedup", min_speedup)
        .f64("min_work_ratio", min_work_ratio)
        .obj(
            "aggregate",
            JsonObj::new()
                .u64("greedy_join_work_units", greedy_work_total)
                .u64("costed_join_work_units", costed_work_total)
                .f64("work_ratio", work_ratio)
                .f64("greedy_join_wall_ms", greedy_wall_total.as_secs_f64() * 1e3)
                .f64("costed_join_wall_ms", costed_wall_total.as_secs_f64() * 1e3)
                .f64("speedup_join_wall", wall_speedup),
        );
    for (name, obj) in pattern_reports {
        report = report.obj(&name, obj);
    }
    report.write(out_path).expect("write bench report");
    println!("wrote {out_path}");
}

/// Correlated-label graph for the adaptive experiment: a small "active"
/// subpopulation of the B class carries every edge, so class-average
/// statistics dilute its true fanouts ~10x (the independence error the
/// cost model cannot see), and the Y/Z branch densities invert between
/// the `planned` version (where the cached plans are computed) and the
/// served version (concept drift that makes those plans stale).
fn correlated_graph(scale: f64, planned: bool) -> Graph {
    use gsi::graph::GraphBuilder;
    let n_a = 8usize;
    let n_b = ((2000.0 * scale) as usize).max(400);
    let n_s = ((160.0 * scale) as usize).max(50); // active subpopulation
    let n_x = ((100.0 * scale) as usize).max(20);
    let n_y = ((100.0 * scale) as usize).max(20);
    let n_z = ((100.0 * scale) as usize).max(20);
    let mut b = GraphBuilder::new();
    let a: Vec<u32> = (0..n_a).map(|_| b.add_vertex(0)).collect();
    let bs: Vec<u32> = (0..n_b).map(|_| b.add_vertex(1)).collect();
    let xs: Vec<u32> = (0..n_x).map(|_| b.add_vertex(2)).collect();
    let ys: Vec<u32> = (0..n_y).map(|_| b.add_vertex(3)).collect();
    let zs: Vec<u32> = (0..n_z).map(|_| b.add_vertex(4)).collect();
    // Only the active b's have any edges; the rest are the uncorrelated
    // mass that drags the class averages down.
    for i in 0..n_s {
        let vb = bs[i];
        b.add_edge(a[i % n_a], vb, 0);
        for j in 0..5 {
            b.add_edge(vb, xs[(i * 3 + j) % n_x], 1);
        }
        let (y_deg, z_deg) = if planned { (10, 1) } else { (1, 10) };
        for j in 0..y_deg {
            b.add_edge(vb, ys[(i * 7 + j) % n_y], 2);
        }
        for j in 0..z_deg {
            b.add_edge(vb, zs[(i * 7 + j) % n_z], 3);
        }
    }
    b.build()
}

/// The recurring star patterns of the adaptive workload, centered on the
/// correlated B class.
fn correlated_patterns() -> Vec<(&'static str, Graph)> {
    use gsi::graph::GraphBuilder;
    let star = |branches: &[(u32, u32)]| {
        let mut qb = GraphBuilder::new();
        let qa = qb.add_vertex(0);
        let qbv = qb.add_vertex(1);
        qb.add_edge(qa, qbv, 0);
        for &(vlabel, elabel) in branches {
            let v = qb.add_vertex(vlabel);
            qb.add_edge(qbv, v, elabel);
        }
        qb.build()
    };
    vec![
        // a(A) -0- b(B) with branch subsets of {x(X,1), y(Y,2), z(Z,3)}.
        ("fork-xy", star(&[(2, 1), (3, 2)])),
        ("fork-zy", star(&[(4, 3), (3, 2)])),
        ("star-zxy", star(&[(4, 3), (2, 1), (3, 2)])),
    ]
}

/// PR 8 perf trajectory — adaptive mid-query re-planning: recurring star
/// patterns over a correlated-label graph are planned once by the
/// cost-based optimizer, the branch densities then invert (concept
/// drift), and the now-stale cached plans are replayed on the served
/// data in two arms: **static** executes each stale plan to the end,
/// **adaptive** (re-plan threshold 2.0) detects the correlation-driven
/// cardinality misses mid-query and re-plans the remaining suffix from
/// observed cardinalities. A fresh-planned arm is reported for context.
///
/// Gates, strongest first: (1) **determinism** — each (pattern, arm)
/// pair runs twice and must charge exactly equal device counters and
/// produce bit-identical tables; (2) **equivalence** — all three arms
/// must produce bit-identical *canonical* match tables; (3) the adaptive
/// arm must actually re-plan on at least one pattern; (4) the adaptive
/// orders must win by at least `min_work_ratio` on join work units
/// (deterministic, timing-immune); (5) the join wall-clock win must
/// clear `min_speedup` (a measurement — CI passes 0 and keeps gates
/// 1–4). Writes BENCH_PR8.json.
pub fn adapt(opts: &HarnessOpts, min_speedup: f64, min_work_ratio: f64, out_path: &str) {
    use crate::report::JsonObj;
    use std::time::Duration;

    section("Adaptive mid-query re-planning — stale plans under concept drift");
    let planned_data = correlated_graph(opts.scale, true);
    let served_data = correlated_graph(opts.scale, false);
    println!(
        "dataset: correlated-label synthetic (served), {}",
        statistics(&served_data)
    );
    let make_engine = || {
        GsiEngine::with_gpu(
            GsiConfig::gsi_opt(),
            Gpu::new(DeviceConfig {
                worker_threads: 1,
                stream_latency_ns: 100,
                ..DeviceConfig::titan_xp()
            }),
        )
    };
    let patterns = correlated_patterns();

    // Plan every pattern once on the pre-drift data — the plan-cache
    // contents a serving system would carry across the update.
    let planner_engine = make_engine();
    let planned_prepared = planner_engine.prepare(&planned_data);
    let stale_plans: Vec<JoinPlan> = patterns
        .iter()
        .map(|(_, q)| {
            planner_engine
                .query_with_options(
                    &planned_data,
                    &planned_prepared,
                    q,
                    QueryOptions {
                        planner: Some(PlannerKind::CostBased),
                        ..QueryOptions::default()
                    },
                )
                .expect("patterns are connected")
                .plan
        })
        .collect();

    let engine = make_engine();
    let prepared = engine.prepare(&served_data);

    // One measured, determinism-checked run per (pattern, arm); the
    // warmed-up second repetition is the one kept.
    let run = |q: &Graph, plan: Option<&JoinPlan>, threshold: Option<f64>| {
        let mut table = None;
        let mut device = None;
        let mut out = None;
        for rep in 0..2 {
            let snap0 = engine.gpu().stats().snapshot();
            let o = engine
                .query_with_options(
                    &served_data,
                    &prepared,
                    q,
                    QueryOptions {
                        planner: Some(PlannerKind::CostBased),
                        plan,
                        replan_qerror_threshold: threshold,
                        ..QueryOptions::default()
                    },
                )
                .expect("patterns are connected");
            let delta = engine.gpu().stats().snapshot() - snap0;
            assert!(!o.stats.timed_out, "workload must complete");
            match (&table, &device) {
                (None, None) => {
                    table = Some(o.matches.table.clone());
                    device = Some(delta);
                }
                (Some(t), Some(d)) => {
                    assert_eq!(t, &o.matches.table, "rep {rep}: non-deterministic table");
                    assert_eq!(d, &delta, "rep {rep}: non-deterministic device counters");
                }
                _ => unreachable!(),
            }
            out = Some(o);
        }
        out.expect("ran")
    };

    let mut t = Table::new(vec![
        "pattern",
        "matches",
        "static work",
        "adaptive work",
        "ratio",
        "replans",
        "static wall",
        "adaptive wall",
        "spd",
    ]);
    let mut pattern_reports = Vec::new();
    let mut static_wall_total = Duration::ZERO;
    let mut adaptive_wall_total = Duration::ZERO;
    let (mut static_work_total, mut adaptive_work_total) = (0u64, 0u64);
    let mut total_replans = 0u32;
    for ((name, q), stale) in patterns.iter().zip(&stale_plans) {
        let s_out = run(q, Some(stale), None);
        let a_out = run(q, Some(stale), Some(2.0));
        let f_out = run(q, None, None); // fresh post-drift plan, for context
        assert_eq!(
            s_out.stats.replans, 0,
            "{name}: static arm must not re-plan"
        );
        assert_eq!(
            s_out.plan.order, stale.order,
            "{name}: static replays the cache"
        );

        // Equivalence gate: identical canonical match tables across all
        // three arms — the orders (and column layouts) differ by design.
        let truth = s_out.matches.canonical();
        assert_eq!(
            truth,
            a_out.matches.canonical(),
            "{name}: adaptive run changed the match set"
        );
        assert_eq!(
            truth,
            f_out.matches.canonical(),
            "{name}: fresh plan disagrees on the match set"
        );
        total_replans += a_out.stats.replans;

        let work_ratio =
            s_out.stats.join_work_units as f64 / a_out.stats.join_work_units.max(1) as f64;
        t.row(vec![
            name.to_string(),
            a_out.matches.len().to_string(),
            human(s_out.stats.join_work_units),
            human(a_out.stats.join_work_units),
            format!("{work_ratio:.1}x"),
            a_out.stats.replans.to_string(),
            ms(s_out.stats.join_time),
            ms(a_out.stats.join_time),
            speedup(s_out.stats.join_time, a_out.stats.join_time),
        ]);
        static_wall_total += s_out.stats.join_time;
        adaptive_wall_total += a_out.stats.join_time;
        static_work_total += s_out.stats.join_work_units;
        adaptive_work_total += a_out.stats.join_work_units;

        let side = |out: &QueryOutput| {
            JsonObj::new()
                .f64("join_wall_ms", out.stats.join_time.as_secs_f64() * 1e3)
                .u64("join_work_units", out.stats.join_work_units)
                .u64(
                    "max_intermediate_rows",
                    out.stats.max_intermediate_rows as u64,
                )
                .u64("replans", out.stats.replans as u64)
                .u64("matches", out.matches.len() as u64)
                .str("order", &format!("{:?}", out.plan.order))
                .f64("q_error", out.explain.mean_q_error().unwrap_or(f64::NAN))
        };
        pattern_reports.push((
            name.to_string(),
            JsonObj::new()
                .obj("static_stale", side(&s_out))
                .obj(
                    "adaptive",
                    side(&a_out).f64(
                        "pre_replan_q_error",
                        a_out.pre_replan_q_error.unwrap_or(f64::NAN),
                    ),
                )
                .obj("fresh", side(&f_out))
                .f64("work_ratio", work_ratio)
                .f64(
                    "speedup_wall",
                    s_out.stats.join_time.as_secs_f64()
                        / a_out.stats.join_time.as_secs_f64().max(1e-12),
                )
                .bool("equivalent", true),
        ));
    }
    t.print();

    let work_ratio = static_work_total as f64 / adaptive_work_total.max(1) as f64;
    let wall_speedup =
        static_wall_total.as_secs_f64() / adaptive_wall_total.as_secs_f64().max(1e-12);
    println!(
        "aggregate join work: static {} vs adaptive {} ({work_ratio:.2}x, deterministic)",
        human(static_work_total),
        human(adaptive_work_total)
    );
    println!(
        "aggregate join wall: static {} vs adaptive {} ({wall_speedup:.2}x, bar {min_speedup}x)",
        ms(static_wall_total),
        ms(adaptive_wall_total)
    );
    println!(
        "equivalence: canonical tables bit-identical across static/adaptive/fresh, \
         {total_replans} mid-query re-plans"
    );
    assert!(
        total_replans > 0,
        "the drifted workload must trigger at least one mid-query re-plan"
    );
    assert!(
        work_ratio >= min_work_ratio,
        "adaptive re-planning must cut join work >= {min_work_ratio}x (got {work_ratio:.2}x)"
    );
    // The wall bar is a measurement, noisy on shared CI runners; pass
    // `--min-speedup 0` to keep only the deterministic gates above.
    assert!(
        wall_speedup >= min_speedup,
        "adaptive re-planning must win >= {min_speedup}x join wall (got {wall_speedup:.2}x)"
    );

    let mut report = JsonObj::new()
        .u64("pr", 8)
        .str("experiment", "adapt")
        .str(
            "description",
            "adaptive mid-query re-planning vs replayed stale cost-based plans on a \
             correlated-label workload under concept drift, equivalence-gated \
             (canonical tables bit-identical, device counters deterministic)",
        )
        .str("dataset", "correlated-label synthetic")
        .f64("scale", opts.scale)
        .u64("seed", opts.seed)
        .u64("patterns", patterns.len() as u64)
        .u64("replans", total_replans as u64)
        .f64("replan_qerror_threshold", 2.0)
        .f64("min_speedup", min_speedup)
        .f64("min_work_ratio", min_work_ratio)
        .obj(
            "aggregate",
            JsonObj::new()
                .u64("static_join_work_units", static_work_total)
                .u64("adaptive_join_work_units", adaptive_work_total)
                .f64("work_ratio", work_ratio)
                .f64("static_join_wall_ms", static_wall_total.as_secs_f64() * 1e3)
                .f64(
                    "adaptive_join_wall_ms",
                    adaptive_wall_total.as_secs_f64() * 1e3,
                )
                .f64("speedup_join_wall", wall_speedup),
        );
    for (name, obj) in pattern_reports {
        report = report.obj(&name, obj);
    }
    report.write(out_path).expect("write bench report");
    println!("wrote {out_path}");
}

/// PR 6 perf trajectory — observability overhead: the PR 2 (enron
/// random-walk) and PR 5 (skewed-label) join workloads run in three arms
/// — baseline `QueryOptions::default()`, explicit `TraceConfig::Off`, and
/// `TraceConfig::On` (per-join-step span timing) — asserting match tables
/// and device counters *exactly* equal across all arms before trusting
/// any wall time, then gating the On arm's aggregate join-wall overhead
/// at `max_overhead` (`0` disables the timing gate for noisy CI runners;
/// the counter-equality gates always run). A closing service-layer pass
/// exercises the metrics exporters, stage breakdowns, and the flight
/// recorder end to end. Writes the measurements to `out_path`
/// (`BENCH_PR6.json`).
pub fn observe(opts: &HarnessOpts, max_overhead: f64, out_path: &str) {
    use crate::report::JsonObj;
    use gsi::prelude::{MetricFormat, TraceConfig};
    use gsi::service::{QueryRequest, ServiceConfig};
    use std::time::Duration;

    section("Observability overhead — tracing Off vs On on the PR 2 / PR 5 workloads");
    let engine = GsiEngine::with_gpu(
        GsiConfig::gsi_opt(),
        Gpu::new(DeviceConfig {
            worker_threads: 1,
            stream_latency_ns: 100,
            ..DeviceConfig::titan_xp()
        }),
    );

    let enron = opts.dataset(DatasetKind::Enron);
    let enron_queries = opts.query_batch(&enron);
    let skew = skewed_graph(opts.scale, opts.seed);
    let skew_queries: Vec<Graph> = skewed_patterns().into_iter().map(|(_, q)| q).collect();
    println!(
        "workloads: enron stand-in ({} random walks), skewed-label synthetic ({} patterns)",
        enron_queries.len(),
        skew_queries.len()
    );

    const REPS: usize = 3;
    let arms: [(&str, TraceConfig); 3] = [
        ("baseline", TraceConfig::default()),
        ("off", TraceConfig::Off),
        ("on", TraceConfig::On),
    ];

    // Per workload and arm: min-of-REPS join wall per query (summed), with
    // every repetition's match table and device-counter delta checked
    // identical — tracing must never change what the engine does, only
    // whether it is watched.
    type RunFingerprint = (Vec<Vec<u32>>, gsi::sim::StatsSnapshot, bool);
    let mut t = Table::new(vec!["workload", "baseline", "off", "on", "on/off"]);
    let mut workload_objs = Vec::new();
    let mut gate_failures = Vec::new();
    for (wname, data, queries) in [
        ("enron", &*enron, &enron_queries),
        ("skewed", &skew, &skew_queries),
    ] {
        let prepared = engine.prepare(data);
        let mut arm_walls = Vec::new();
        let mut reference: Option<Vec<RunFingerprint>> = None;
        let mut matches_total = 0u64;
        let mut guard_aborts = 0u64;
        let mut span_steps = 0u64;
        for (aname, trace) in arms {
            let mut wall = Duration::ZERO;
            let mut fingerprints = Vec::with_capacity(queries.len());
            for q in queries {
                let mut best: Option<Duration> = None;
                let mut seen: Option<RunFingerprint> = None;
                for rep in 0..REPS {
                    let snap0 = engine.gpu().stats().snapshot();
                    let o = engine
                        .query_with_options(
                            data,
                            &prepared,
                            q,
                            QueryOptions {
                                trace,
                                timeout: Some(opts.timeout()),
                                ..QueryOptions::default()
                            },
                        )
                        .expect("workload patterns are connected");
                    let delta = engine.gpu().stats().snapshot() - snap0;
                    best = Some(
                        best.map_or(o.stats.join_time, |b: Duration| b.min(o.stats.join_time)),
                    );
                    // Guard-tripped runs (intermediate-rows cap, like the
                    // PR 2 harness tolerates) stay in the workload — they
                    // must abort identically in every arm.
                    let fp = (o.matches.canonical(), delta, o.stats.timed_out);
                    match &seen {
                        None => seen = Some(fp),
                        Some(prev) => assert_eq!(
                            prev, &fp,
                            "{wname}/{aname} rep {rep}: non-deterministic run"
                        ),
                    }
                    if aname == "on" {
                        span_steps += o.stats.step_times.len() as u64;
                        // One timer per executed join iteration: step_rows
                        // records the seed row count plus one entry per
                        // iteration, however early the run stopped.
                        assert_eq!(
                            o.stats.step_times.len(),
                            o.stats.step_rows.len().saturating_sub(1),
                            "On must time every executed join step"
                        );
                    } else {
                        assert!(o.stats.step_times.is_empty(), "Off keeps no step timers");
                    }
                    if aname == "baseline" && rep == 0 {
                        matches_total += o.matches.len() as u64;
                        guard_aborts += o.stats.timed_out as u64;
                    }
                }
                wall += best.expect("ran");
                fingerprints.push(seen.expect("ran"));
            }
            match &reference {
                None => reference = Some(fingerprints),
                Some(base) => assert_eq!(
                    base, &fingerprints,
                    "{wname}/{aname}: tracing changed matches or device counters"
                ),
            }
            arm_walls.push((aname, wall));
        }
        let base = arm_walls[0].1.as_secs_f64();
        let off = arm_walls[1].1.as_secs_f64();
        let on = arm_walls[2].1.as_secs_f64();
        let on_overhead = on / off.max(1e-12) - 1.0;
        let off_delta = off / base.max(1e-12) - 1.0;
        t.row(vec![
            wname.to_string(),
            ms(arm_walls[0].1),
            ms(arm_walls[1].1),
            ms(arm_walls[2].1),
            format!("{:+.1}%", on_overhead * 100.0),
        ]);
        if max_overhead > 0.0 {
            if on_overhead > max_overhead {
                gate_failures.push(format!(
                    "{wname}: On-tracing join-wall overhead {:.1}% > {:.1}%",
                    on_overhead * 100.0,
                    max_overhead * 100.0
                ));
            }
            if off_delta > max_overhead {
                gate_failures.push(format!(
                    "{wname}: Off-mode join wall drifted {:.1}% from baseline (> {:.1}%)",
                    off_delta * 100.0,
                    max_overhead * 100.0
                ));
            }
        }
        workload_objs.push((
            wname,
            JsonObj::new()
                .u64("queries", queries.len() as u64)
                .u64("matches", matches_total)
                .u64("guard_aborts", guard_aborts)
                .u64("reps", REPS as u64)
                .f64("baseline_join_wall_ms", base * 1e3)
                .f64("off_join_wall_ms", off * 1e3)
                .f64("on_join_wall_ms", on * 1e3)
                .f64("overhead_on_vs_off", on_overhead)
                .f64("overhead_off_vs_baseline", off_delta)
                .u64("on_span_steps_timed", span_steps)
                .bool("counters_exactly_equal", true),
        ));
    }
    t.print();
    println!("equivalence: canonical tables and device counters bit-identical across arms");
    assert!(gate_failures.is_empty(), "{}", gate_failures.join("; "));

    // Service-layer pass: the same enron workload through `GsiService`
    // with tracing On — stage breakdowns must account for end-to-end
    // latency, the exporters must render, and the flight recorder must
    // hold span trees for the slowest queries.
    let service = GsiService::new(ServiceConfig {
        workers: 2,
        trace: TraceConfig::On,
        ..ServiceConfig::default()
    });
    service.register("enron", (*enron).clone());
    let tickets: Vec<_> = enron_queries
        .iter()
        .map(|q| {
            service
                .submit(QueryRequest::new("enron", q.clone()))
                .expect("queue has room")
        })
        .collect();
    let mut max_unaccounted = 0.0f64;
    for ticket in tickets {
        let resp = ticket.wait();
        let outcome = resp.result.expect("query served");
        let lat = outcome.latency.as_secs_f64();
        let sum = outcome.stage_breakdown.total().as_secs_f64();
        max_unaccounted = max_unaccounted.max((lat - sum).abs() / lat.max(1e-9));
    }
    let snap = service.stats();
    let prom = service.export_metrics(MetricFormat::Prometheus);
    let flight_len = service.flight_recorder().len();
    println!(
        "service pass: {} served, stage sums within {:.1}% of latency, \
         {} flight-recorder traces, {} Prometheus lines",
        snap.completed,
        max_unaccounted * 100.0,
        flight_len,
        prom.lines().count()
    );
    assert!(flight_len > 0, "flight recorder retained served queries");
    assert!(
        prom.contains(&format!("gsi_queries_completed_total {}", snap.completed)),
        "exporter reflects the served workload"
    );

    let mut report = JsonObj::new()
        .u64("pr", 6)
        .str("experiment", "observe")
        .str(
            "description",
            "per-query tracing overhead: baseline vs TraceConfig::Off vs \
             TraceConfig::On on the PR 2 (enron) and PR 5 (skewed-label) join \
             workloads, equivalence-gated (canonical tables and device \
             counters bit-identical across arms), min-of-reps join wall; \
             plus a traced service-layer pass over the exporters and the \
             flight recorder",
        )
        .f64("scale", opts.scale)
        .u64("seed", opts.seed)
        .f64("max_overhead", max_overhead)
        .obj(
            "service",
            JsonObj::new()
                .u64("completed", snap.completed)
                .f64("stage_sum_max_unaccounted_fraction", max_unaccounted)
                .u64("flight_recorder_traces", flight_len as u64)
                .u64("prometheus_lines", prom.lines().count() as u64)
                .f64(
                    "mean_q_error",
                    snap.mean_estimation_error().unwrap_or(f64::NAN),
                ),
        );
    for (name, obj) in workload_objs {
        report = report.obj(name, obj);
    }
    report.write(out_path).expect("write bench report");
    println!("wrote {out_path}");
}

/// High-multiplicity synthetic: a handful of label-0 anchors each fanning
/// out to many label-1 vertices (every B touches exactly two distinct
/// anchors), plus a sparse label-1 ring among the Bs. Join steps that link
/// back to the anchor column see the same `v'` repeated across hundreds of
/// rows — the radix-hash strategy's target shape.
fn multiplicity_graph(scale: f64, seed: u64) -> Graph {
    use gsi::graph::GraphBuilder;
    let n_a = 6usize;
    let n_b = ((1600.0 * scale) as usize).max(240);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00AD_17E5);
    let mut b = GraphBuilder::new();
    let a: Vec<u32> = (0..n_a).map(|_| b.add_vertex(0)).collect();
    let bs: Vec<u32> = (0..n_b).map(|_| b.add_vertex(1)).collect();
    for &vb in &bs {
        let first = rng.random_range(0..n_a);
        let second = (first + 1 + rng.random_range(0..(n_a - 1))) % n_a;
        b.add_edge(a[first], vb, 0);
        b.add_edge(a[second], vb, 0);
    }
    for i in 0..n_b {
        b.add_edge(bs[i], bs[(i + 1) % n_b], 1);
        b.add_edge(bs[i], bs[(i + 7) % n_b], 1);
    }
    b.build()
}

/// The recurring patterns of the multiplicity workload: a fork (two Bs off
/// one anchor — the second extension re-streams the anchor's full fan-out
/// per row) and a wedge (closing a triangle through the anchor — a
/// two-linking-edge step whose second edge repeats the anchor per row).
fn multiplicity_patterns() -> Vec<(&'static str, Graph)> {
    use gsi::graph::GraphBuilder;
    let mut qb = GraphBuilder::new();
    let u0 = qb.add_vertex(0);
    let u1 = qb.add_vertex(1);
    let u2 = qb.add_vertex(1);
    qb.add_edge(u0, u1, 0);
    qb.add_edge(u0, u2, 0);
    let fork = qb.build();

    let mut qb = GraphBuilder::new();
    let u0 = qb.add_vertex(0);
    let u1 = qb.add_vertex(1);
    let u2 = qb.add_vertex(1);
    qb.add_edge(u0, u1, 0);
    qb.add_edge(u1, u2, 1);
    qb.add_edge(u0, u2, 0);
    let wedge = qb.build();

    vec![("fork", fork), ("wedge", wedge)]
}

/// PR 7 perf trajectory — columnar execution: the vectorized set-operation
/// kernels against the scalar reference, and the radix-hash join strategy
/// against Prealloc-Combine / two-step on a high-multiplicity workload.
///
/// Three parts, every wall time guarded by a deterministic gate first:
///
/// 1. **Kernel microbenchmark** — a fixed stream of first-edge/intersect
///    operations over synthetic sorted lists (dense-merge, skewed-gallop,
///    and sparse profiles) runs under the scalar and vectorized kernel
///    arms on identical zero-latency devices. Outputs must be
///    bit-identical and the two devices' final counters **exactly equal**
///    (the vectorized kernels are a host-execution optimization only —
///    the modeled device cost is contractually unchanged); then the
///    vectorized arm's min-of-reps wall must clear `min_speedup`.
///    Throughput is reported as Melem/s = streamed work units / join
///    wall seconds / 1e6.
/// 2. **Join strategies** — the fork/wedge patterns on the multiplicity
///    graph under Prealloc-Combine, two-step, radix-hash, and
///    Prealloc-Combine with cost-model promotion (`radix_join_threshold`):
///    canonical tables bit-identical across all four, counters
///    deterministic per cell, and the radix cells must *cut GLD
///    transactions* vs Prealloc-Combine (the promotion cell proves the
///    threshold actually fired).
/// 3. **Engine-level kernel equivalence** — the same workload under
///    scalar vs vectorized kernels on both backends: all four cells must
///    charge exactly equal device counters and produce bit-identical
///    tables.
///
/// Writes BENCH_PR7.json.
pub fn setops(opts: &HarnessOpts, min_speedup: f64, out_path: &str) {
    use crate::report::JsonObj;
    use gsi::engine::set_ops::{CandidateProbe, SetOpExec};
    use gsi::graph::storage::Neighbors;
    use gsi::signature::CandidateSet;
    use std::borrow::Cow;
    use std::hint::black_box;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    section("Columnar set-op kernels — scalar vs vectorized, plus radix-hash joins");

    // ---- Part 1: kernel microbenchmark --------------------------------
    let universe: u32 = 1 << 16;
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5E70_0555);
    let n_ops = ((240.0 * opts.scale) as usize).max(48);
    let reps = 5usize;
    struct Op {
        nbrs: Vec<u32>,
        buf: Vec<u32>,
        cand: Vec<u32>,
        row: Vec<u32>,
    }
    let mut make_sorted = |len: usize, span: u32| -> Vec<u32> {
        let base = rng.random_range(0..universe - span);
        let mut v: Vec<u32> = (0..len).map(|_| base + rng.random_range(0..span)).collect();
        v.sort_unstable();
        v
    };
    let ops: Vec<Op> = (0..n_ops)
        .map(|i| {
            // Three density profiles: dense merge, skewed (gallop side),
            // sparse wide-span.
            let (nl, bl, span) = match i % 3 {
                0 => (4096usize, 3000usize, 6000u32),
                1 => (8192, 96, 48000),
                _ => (2048, 2048, 60000),
            };
            let mut cand = make_sorted(nl / 2, span);
            cand.dedup();
            Op {
                nbrs: make_sorted(nl, span),
                buf: make_sorted(bl, span),
                cand,
                row: vec![3, 11, 27],
            }
        })
        .collect();

    // One arm: fresh zero-latency device (both arms charge identical
    // transactions, so any modeled stall would cancel; the wall clock
    // isolates host kernel execution). Probe builds and the output-
    // collecting verification pass stay outside the timed region.
    let run_arm = |kernels: SetOpKernels| {
        let gpu = Gpu::new(DeviceConfig {
            worker_threads: 1,
            stream_latency_ns: 0,
            ..DeviceConfig::titan_xp()
        });
        let probes: Vec<(CandidateProbe, CandidateProbe)> = ops
            .iter()
            .map(|op| {
                let cs = CandidateSet {
                    query_vertex: 0,
                    list: Arc::new(op.cand.clone()),
                };
                (
                    CandidateProbe::build(&gpu, SetOpStrategy::GpuFriendly, universe as usize, &cs),
                    CandidateProbe::build(&gpu, SetOpStrategy::Naive, universe as usize, &cs),
                )
            })
            .collect();
        // One sub-sweep per set-op strategy: the naive strategy's probes
        // are per-element binary searches and per-batch row rereads in
        // *both* kernel arms by contract, so it is timed (and reported)
        // separately from the GPU-friendly strategy the paper's design —
        // and the speedup gate — targets.
        let one_sweep = |strategy: SetOpStrategy, collect: bool| -> Vec<Vec<u32>> {
            let exec = SetOpExec {
                strategy,
                write_cache: true,
                kernels,
            };
            let mut outs = Vec::new();
            for (op, (pg, pn)) in ops.iter().zip(&probes) {
                let nbrs = Neighbors {
                    list: Cow::Borrowed(op.nbrs.as_slice()),
                    in_global: true,
                    ci_offset: 13,
                };
                let probe = match strategy {
                    SetOpStrategy::GpuFriendly => pg,
                    SetOpStrategy::Naive => pn,
                };
                let fe = exec.first_edge(
                    &gpu,
                    &nbrs,
                    &op.row,
                    probe,
                    Some((5, op.row.len())),
                    Some(64),
                    true,
                    None,
                );
                let ix = exec.intersect(&gpu, &op.buf, Some(32), &nbrs, Some(64), true, None);
                if collect {
                    outs.push(fe);
                    outs.push(ix);
                } else {
                    black_box((fe, ix));
                }
            }
            outs
        };
        let mut outputs = Vec::new();
        let mut walls = Vec::new();
        let mut elems = Vec::new();
        for strategy in [SetOpStrategy::GpuFriendly, SetOpStrategy::Naive] {
            outputs.extend(one_sweep(strategy, true)); // warm-up + equivalence
            let work0 = gpu.stats().snapshot().work_units;
            let mut best = Duration::MAX;
            for _ in 0..reps {
                let t0 = Instant::now();
                one_sweep(strategy, false);
                best = best.min(t0.elapsed());
            }
            walls.push(best);
            elems.push((gpu.stats().snapshot().work_units - work0) / reps as u64);
        }
        (outputs, walls, elems, gpu.stats().snapshot())
    };

    let (s_out, s_walls, s_elems, s_snap) = run_arm(SetOpKernels::Scalar);
    let (v_out, v_walls, v_elems, v_snap) = run_arm(SetOpKernels::Vectorized);
    assert_eq!(
        s_out, v_out,
        "kernel arms must produce bit-identical outputs"
    );
    assert_eq!(
        s_snap, v_snap,
        "kernel arms must charge exactly equal device counters"
    );
    assert_eq!(s_elems, v_elems, "identical charges imply identical work");
    let melem = |elems: u64, wall: Duration| elems as f64 / wall.as_secs_f64().max(1e-12) / 1e6;
    // Index 0 = GPU-friendly strategy (the gated arm), 1 = naive ablation.
    let kernel_speedup = s_walls[0].as_secs_f64() / v_walls[0].as_secs_f64().max(1e-12);
    let naive_speedup = s_walls[1].as_secs_f64() / v_walls[1].as_secs_f64().max(1e-12);
    let mut t = Table::new(vec![
        "strategy / kernel arm",
        "wall/sweep",
        "Melem/s",
        "spd",
    ]);
    for (si, sname) in ["gpu-friendly", "naive"].iter().enumerate() {
        t.row(vec![
            format!("{sname} / scalar"),
            ms(s_walls[si]),
            format!("{:.1}", melem(s_elems[si], s_walls[si])),
            "1.0x".into(),
        ]);
        t.row(vec![
            format!("{sname} / vectorized"),
            ms(v_walls[si]),
            format!("{:.1}", melem(v_elems[si], v_walls[si])),
            format!(
                "{:.2}x",
                s_walls[si].as_secs_f64() / v_walls[si].as_secs_f64().max(1e-12)
            ),
        ]);
    }
    t.print();
    println!(
        "microbench: {n_ops} ops x 2 primitives/strategy, {} elements/sweep \
         (gpu-friendly), counters bit-identical; naive ablation {naive_speedup:.2}x",
        human(s_elems[0])
    );
    // The wall bar is a measurement, noisy on shared CI runners; pass
    // `--min-speedup 0` to keep only the deterministic gates.
    assert!(
        kernel_speedup >= min_speedup,
        "vectorized kernels must win >= {min_speedup}x wall (got {kernel_speedup:.2}x)"
    );

    // ---- Part 2: join strategies on the multiplicity workload ---------
    let data = multiplicity_graph(opts.scale, opts.seed);
    println!(
        "\ndataset: high-multiplicity synthetic, {}",
        statistics(&data)
    );
    let patterns = multiplicity_patterns();
    let cells: Vec<(&str, JoinScheme, Option<f64>)> = vec![
        ("prealloc", JoinScheme::PreallocCombine, None),
        ("two-step", JoinScheme::TwoStep, None),
        ("radix-hash", JoinScheme::RadixHash, None),
        ("prealloc+radix", JoinScheme::PreallocCombine, Some(8.0)),
    ];

    let mut t = Table::new(vec![
        "strategy",
        "matches",
        "join work",
        "GLD",
        "join wall",
        "Melem/s",
    ]);
    let mut strategy_objs: Vec<(String, JsonObj)> = Vec::new();
    let mut reference: Option<Vec<Vec<u32>>> = None;
    let mut gld_by_cell: Vec<(String, u64)> = Vec::new();
    for (name, scheme, threshold) in &cells {
        let engine = GsiEngine::with_gpu(
            GsiConfig {
                join_scheme: *scheme,
                radix_join_threshold: *threshold,
                ..GsiConfig::gsi_opt()
            }
            .with_planner(PlannerKind::CostBased),
            Gpu::new(DeviceConfig {
                worker_threads: 1,
                stream_latency_ns: 100,
                ..DeviceConfig::titan_xp()
            }),
        );
        let prepared = engine.prepare(&data);
        let mut wall = Duration::ZERO;
        let mut work = 0u64;
        let mut gld = 0u64;
        let mut matches_total = 0u64;
        let mut canon_all: Vec<Vec<u32>> = Vec::new();
        for (pname, q) in &patterns {
            // Two reps: determinism gate on table and counters, keep the
            // warmed second rep's wall.
            let mut kept: Option<(Vec<Vec<u32>>, gsi::sim::StatsSnapshot)> = None;
            for rep in 0..2 {
                let snap0 = engine.gpu().stats().snapshot();
                let out = engine
                    .query(&data, &prepared, q)
                    .expect("multiplicity patterns are connected");
                let delta = engine.gpu().stats().snapshot() - snap0;
                assert!(!out.stats.timed_out, "{name}/{pname}: must complete");
                match &kept {
                    None => kept = Some((out.matches.canonical(), delta)),
                    Some((table, dev)) => {
                        assert_eq!(
                            table,
                            &out.matches.canonical(),
                            "{name}/{pname} rep {rep}: non-deterministic table"
                        );
                        assert_eq!(
                            dev, &delta,
                            "{name}/{pname} rep {rep}: non-deterministic counters"
                        );
                        wall += out.stats.join_time;
                        work += out.stats.join_work_units;
                        gld += delta.gld_transactions;
                        matches_total += out.matches.len() as u64;
                    }
                }
            }
            canon_all.extend(kept.expect("ran").0);
        }
        // Equivalence gate: every cell reproduces the same match set.
        match &reference {
            None => reference = Some(canon_all),
            Some(expect) => assert_eq!(
                &canon_all, expect,
                "{name}: strategies disagree on the match set"
            ),
        }
        let melem_s = work as f64 / wall.as_secs_f64().max(1e-12) / 1e6;
        t.row(vec![
            name.to_string(),
            matches_total.to_string(),
            human(work),
            human(gld),
            ms(wall),
            format!("{melem_s:.1}"),
        ]);
        gld_by_cell.push((name.to_string(), gld));
        strategy_objs.push((
            name.to_string(),
            JsonObj::new()
                .f64("join_wall_ms", wall.as_secs_f64() * 1e3)
                .u64("join_work_units", work)
                .u64("gld", gld)
                .u64("matches", matches_total)
                .f64("melem_per_s", melem_s)
                .bool("equivalent", true),
        ));
    }
    t.print();
    let gld_of = |n: &str| {
        gld_by_cell
            .iter()
            .find(|(c, _)| c == n)
            .map(|&(_, g)| g)
            .expect("cell ran")
    };
    // Deterministic radix gates: the restructured step must cut GLD
    // transactions, and the promotion cell proves the threshold fired.
    assert!(
        gld_of("radix-hash") < gld_of("prealloc"),
        "radix-hash must cut GLD on the high-multiplicity workload \
         (radix {} vs prealloc {})",
        gld_of("radix-hash"),
        gld_of("prealloc")
    );
    assert!(
        gld_of("prealloc+radix") < gld_of("prealloc"),
        "cost-model promotion must fire and cut GLD (promoted {} vs base {})",
        gld_of("prealloc+radix"),
        gld_of("prealloc")
    );
    println!(
        "radix GLD cut: {:.2}x vs prealloc ({} -> {}); promoted cell {:.2}x",
        gld_of("prealloc") as f64 / gld_of("radix-hash").max(1) as f64,
        human(gld_of("prealloc")),
        human(gld_of("radix-hash")),
        gld_of("prealloc") as f64 / gld_of("prealloc+radix").max(1) as f64,
    );

    // ---- Part 3: engine-level kernel equivalence ----------------------
    let mut cell_snaps: Vec<(String, gsi::sim::StatsSnapshot, Duration)> = Vec::new();
    let mut cell_tables: Vec<Vec<Vec<u32>>> = Vec::new();
    for (kname, kernels) in [
        ("scalar", SetOpKernels::Scalar),
        ("vectorized", SetOpKernels::Vectorized),
    ] {
        for (bname, backend, threads) in [
            ("serial", BackendKind::Serial, 0usize),
            ("host-parallel", BackendKind::HostParallel, 3),
        ] {
            let engine = GsiEngine::with_gpu(
                GsiConfig {
                    set_op_kernels: kernels,
                    ..GsiConfig::gsi_opt()
                }
                .with_backend(backend, threads),
                Gpu::new(DeviceConfig {
                    worker_threads: 1,
                    stream_latency_ns: 0,
                    ..DeviceConfig::titan_xp()
                }),
            );
            let prepared = engine.prepare(&data);
            let mut wall = Duration::ZERO;
            let mut canon_all: Vec<Vec<u32>> = Vec::new();
            let snap0 = engine.gpu().stats().snapshot();
            for (_, q) in &patterns {
                let out = engine
                    .query(&data, &prepared, q)
                    .expect("multiplicity patterns are connected");
                wall += out.stats.join_time;
                canon_all.extend(out.matches.canonical());
            }
            let delta = engine.gpu().stats().snapshot() - snap0;
            cell_snaps.push((format!("{kname}/{bname}"), delta, wall));
            cell_tables.push(canon_all);
        }
    }
    for ((name, snap, _), table) in cell_snaps.iter().zip(&cell_tables).skip(1) {
        assert_eq!(
            snap, &cell_snaps[0].1,
            "{name}: engine-level counters diverge from scalar/serial"
        );
        assert_eq!(
            table, &cell_tables[0],
            "{name}: engine-level tables diverge from scalar/serial"
        );
    }
    println!(
        "engine-level: 4 (kernel x backend) cells bit-identical; \
         scalar/serial join wall {} vs vectorized/serial {}",
        ms(cell_snaps[0].2),
        ms(cell_snaps[2].2)
    );

    // ---- report -------------------------------------------------------
    let mut report = JsonObj::new()
        .u64("pr", 7)
        .str("experiment", "setops")
        .str(
            "description",
            "columnar execution: vectorized set-op kernels vs the scalar \
             reference (bit-identical outputs and device counters, wall \
             speedup gated), and the radix-hash join strategy vs \
             Prealloc-Combine / two-step on a high-multiplicity workload \
             (canonical tables bit-identical, radix cells gated on a \
             deterministic GLD cut)",
        )
        .f64("scale", opts.scale)
        .u64("seed", opts.seed)
        .f64("min_speedup", min_speedup)
        .obj(
            "microbench",
            JsonObj::new()
                .u64("ops", n_ops as u64)
                .u64("elements_per_sweep", s_elems[0])
                .f64("scalar_wall_ms", s_walls[0].as_secs_f64() * 1e3)
                .f64("vectorized_wall_ms", v_walls[0].as_secs_f64() * 1e3)
                .f64("scalar_melem_per_s", melem(s_elems[0], s_walls[0]))
                .f64("vectorized_melem_per_s", melem(v_elems[0], v_walls[0]))
                .f64("speedup_wall", kernel_speedup)
                .f64("naive_ablation_speedup_wall", naive_speedup)
                .bool("counters_bit_identical", true),
        )
        .obj(
            "engine_kernel_equivalence",
            JsonObj::new()
                .u64("cells", cell_snaps.len() as u64)
                .bool("counters_bit_identical", true)
                .bool("tables_bit_identical", true)
                .f64(
                    "scalar_serial_join_wall_ms",
                    cell_snaps[0].2.as_secs_f64() * 1e3,
                )
                .f64(
                    "vectorized_serial_join_wall_ms",
                    cell_snaps[2].2.as_secs_f64() * 1e3,
                ),
        );
    for (name, obj) in strategy_objs {
        report = report.obj(&name, obj);
    }
    report.write(out_path).expect("write bench report");
    println!("wrote {out_path}");
}

/// Run every experiment in paper order.
pub fn all(opts: &HarnessOpts) {
    table2(opts);
    table3(opts);
    table4(opts);
    table5(opts);
    table6(opts);
    table7(opts);
    table8(opts);
    table9(opts);
    table10(opts);
    table11(opts);
    fig12(opts);
    fig13(opts);
    fig14(opts);
    fig15(opts);
}
