//! Fig. 13 microbenchmark: GSI-opt on a growing WatDiv-like series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsi::prelude::*;
use gsi_bench::runner::run_gsi;
use gsi_bench::workloads::{watdiv_series, HarnessOpts};
use std::hint::black_box;

fn bench_scalability(c: &mut Criterion) {
    let opts = HarnessOpts {
        scale: 0.05,
        queries: 1,
        query_size: 8,
        ..Default::default()
    };
    let series = watdiv_series(&opts, 3);

    let mut g = c.benchmark_group("fig13_scalability");
    for (name, data) in &series {
        let queries = opts.query_batch(data);
        g.throughput(Throughput::Elements(data.n_edges() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), data, |b, data| {
            b.iter(|| black_box(run_gsi(&GsiConfig::gsi_opt(), data, &queries, &opts).matches))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scalability
}
criterion_main!(benches);
