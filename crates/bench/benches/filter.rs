//! Table IV / Fig. 8 microbenchmark: the three filtering strategies and the
//! row-first vs column-first signature layouts.

use criterion::{criterion_group, criterion_main, Criterion};
use gsi::datasets::DatasetKind;
use gsi::prelude::*;
use gsi_bench::runner::run_gsi_filter_only;
use gsi_bench::workloads::HarnessOpts;
use std::hint::black_box;

fn bench_filters(c: &mut Criterion) {
    let opts = HarnessOpts {
        scale: 0.1,
        queries: 2,
        query_size: 8,
        ..Default::default()
    };
    let data = opts.dataset(DatasetKind::Enron);
    let queries = opts.query_batch(&data);

    let mut g = c.benchmark_group("table4_filters");
    for (name, filter) in [
        ("gsi_signature", FilterStrategy::Signature),
        ("gpsm_label_degree", FilterStrategy::LabelDegree),
        ("gunrock_label_only", FilterStrategy::LabelOnly),
    ] {
        let cfg = GsiConfig {
            filter,
            ..GsiConfig::gsi_opt()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_gsi_filter_only(&cfg, &data, &queries).min_candidate))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig8_layouts");
    for (name, layout) in [
        ("column_first", Layout::ColumnFirst),
        ("row_first", Layout::RowFirst),
    ] {
        let cfg = GsiConfig {
            signature_layout: layout,
            ..GsiConfig::gsi_opt()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_gsi_filter_only(&cfg, &data, &queries).gld))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_filters
}
criterion_main!(benches);
