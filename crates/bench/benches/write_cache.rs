//! Table VII microbenchmark: the 128-byte write cache on vs off.

use criterion::{criterion_group, criterion_main, Criterion};
use gsi::datasets::DatasetKind;
use gsi::prelude::*;
use gsi_bench::runner::run_gsi;
use gsi_bench::workloads::HarnessOpts;
use std::hint::black_box;

fn bench_write_cache(c: &mut Criterion) {
    let opts = HarnessOpts {
        scale: 0.06,
        queries: 2,
        query_size: 8,
        ..Default::default()
    };
    let data = opts.dataset(DatasetKind::Enron);
    let queries = opts.query_batch(&data);

    let mut g = c.benchmark_group("table7_write_cache");
    for (name, cache) in [("write_cache", true), ("no_cache", false)] {
        let cfg = GsiConfig {
            write_cache: cache,
            ..GsiConfig::gsi()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_gsi(&cfg, &data, &queries, &opts).join_gst))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_write_cache
}
criterion_main!(benches);
