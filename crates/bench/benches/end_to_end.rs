//! Fig. 12 microbenchmark: every engine end-to-end on a small enron
//! stand-in (VF3-like, CFL-like, GpSM, GunrockSM, GSI, GSI-opt).

use criterion::{criterion_group, criterion_main, Criterion};
use gsi::baselines::{gpsm, gunrock};
use gsi::datasets::DatasetKind;
use gsi::prelude::*;
use gsi_bench::runner::{run_cpu_baseline, run_edge_baseline, run_gsi, CpuBaseline};
use gsi_bench::workloads::HarnessOpts;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let opts = HarnessOpts {
        scale: 0.05,
        queries: 2,
        query_size: 6,
        ..Default::default()
    };
    let data = opts.dataset(DatasetKind::Enron);
    let queries = opts.query_batch(&data);

    let mut g = c.benchmark_group("fig12_engines");
    g.bench_function("vf3_like", |b| {
        b.iter(|| black_box(run_cpu_baseline(CpuBaseline::Vf3, &data, &queries, &opts).matches))
    });
    g.bench_function("cfl_like", |b| {
        b.iter(|| black_box(run_cpu_baseline(CpuBaseline::Cfl, &data, &queries, &opts).matches))
    });
    g.bench_function("gpsm", |b| {
        let engine = gpsm::engine(Gpu::new(DeviceConfig::titan_xp()));
        b.iter(|| black_box(run_edge_baseline(&engine, &data, &queries, &opts).matches))
    });
    g.bench_function("gunrock_sm", |b| {
        let engine = gunrock::engine(Gpu::new(DeviceConfig::titan_xp()));
        b.iter(|| black_box(run_edge_baseline(&engine, &data, &queries, &opts).matches))
    });
    g.bench_function("gsi", |b| {
        b.iter(|| black_box(run_gsi(&GsiConfig::gsi(), &data, &queries, &opts).matches))
    });
    g.bench_function("gsi_opt", |b| {
        b.iter(|| black_box(run_gsi(&GsiConfig::gsi_opt(), &data, &queries, &opts).matches))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines
}
criterion_main!(benches);
