//! Table VI microbenchmark: the join-technique ladder (GSI- → +DS → +PC →
//! +SO) plus the first-edge selection ablation (Algorithm 4 line 1).

use criterion::{criterion_group, criterion_main, Criterion};
use gsi::datasets::DatasetKind;
use gsi::prelude::*;
use gsi_bench::runner::run_gsi;
use gsi_bench::workloads::HarnessOpts;
use std::hint::black_box;

fn bench_join_ladder(c: &mut Criterion) {
    let opts = HarnessOpts {
        scale: 0.06,
        queries: 2,
        query_size: 8,
        ..Default::default()
    };
    let data = opts.dataset(DatasetKind::Enron);
    let queries = opts.query_batch(&data);

    let mut g = c.benchmark_group("table6_ladder");
    for (name, cfg) in [
        ("gsi_base", GsiConfig::gsi_base()),
        ("plus_ds_pcsr", GsiConfig::gsi_ds()),
        ("plus_pc_prealloc", GsiConfig::gsi_pc()),
        ("plus_so_full_gsi", GsiConfig::gsi()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_gsi(&cfg, &data, &queries, &opts).matches))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("alg4_first_edge_ablation");
    for (name, min_freq) in [("min_freq_edge", true), ("arbitrary_edge", false)] {
        let cfg = GsiConfig {
            first_edge_min_freq: min_freq,
            ..GsiConfig::gsi()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_gsi(&cfg, &data, &queries, &opts).allocs))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("gba_combined_alloc_ablation");
    for (name, combined) in [("combined_gba", true), ("per_row_buffers", false)] {
        let cfg = GsiConfig {
            combined_alloc: combined,
            ..GsiConfig::gsi()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_gsi(&cfg, &data, &queries, &opts).allocs))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_join_ladder
}
criterion_main!(benches);
