//! Table II microbenchmark: `N(v, l)` extraction across the four storage
//! structures, plus the PCSR GPN ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsi::datasets::DatasetKind;
use gsi::graph::basic::BasicStore;
use gsi::graph::compressed::CompressedStore;
use gsi::graph::csr::Csr;
use gsi::graph::pcsr::PcsrStore;
use gsi::graph::LabeledStore;
use gsi::prelude::*;
use gsi_bench::workloads::HarnessOpts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn sample_pairs(data: &Graph, n: usize) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v = rng.random_range(0..data.n_vertices()) as u32;
        let nbrs = data.neighbors(v);
        if nbrs.is_empty() {
            continue;
        }
        let (_, l) = nbrs[rng.random_range(0..nbrs.len())];
        out.push((v, l));
    }
    out
}

fn bench_extraction(c: &mut Criterion) {
    let opts = HarnessOpts {
        scale: 0.1,
        ..Default::default()
    };
    let data = opts.dataset(DatasetKind::Gowalla);
    let pairs = sample_pairs(&data, 256);
    let gpu = Gpu::new(DeviceConfig::titan_xp());

    let stores: Vec<(&str, Box<dyn LabeledStore>)> = vec![
        ("csr", Box::new(Csr::build(&data))),
        ("br", Box::new(BasicStore::build(&data))),
        ("cr", Box::new(CompressedStore::build(&data))),
        ("pcsr", Box::new(PcsrStore::build(&data))),
    ];

    let mut g = c.benchmark_group("table2_extraction");
    for (name, store) in &stores {
        g.bench_function(*name, |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &(v, l) in &pairs {
                    let n = store.neighbors_with_label(&gpu, v, l);
                    n.for_each_batch(&gpu, |batch| total += batch.len());
                }
                black_box(total)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("table2_gpn_ablation");
    for gpn in [2usize, 4, 8, 16] {
        let store = PcsrStore::build_with_gpn(&data, gpn);
        g.bench_with_input(BenchmarkId::from_parameter(gpn), &gpn, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for &(v, l) in &pairs {
                    total += store.neighbor_count(&gpu, v, l);
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_extraction
}
criterion_main!(benches);
