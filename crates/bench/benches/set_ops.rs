//! §V microbenchmark: GPU-friendly vs naive set operations, and the raw
//! primitive costs (bitset probe vs sorted-list binary search).

use criterion::{criterion_group, criterion_main, Criterion};
use gsi::datasets::DatasetKind;
use gsi::engine::set_ops::CandidateProbe;
use gsi::engine::SetOpStrategy;
use gsi::prelude::*;
use gsi::signature::CandidateSet;
use gsi_bench::runner::run_gsi;
use gsi_bench::workloads::HarnessOpts;
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let opts = HarnessOpts {
        scale: 0.06,
        queries: 2,
        query_size: 8,
        ..Default::default()
    };
    let data = opts.dataset(DatasetKind::Enron);
    let queries = opts.query_batch(&data);

    let mut g = c.benchmark_group("sec5_set_op_strategy");
    for (name, strategy) in [
        ("gpu_friendly", SetOpStrategy::GpuFriendly),
        ("naive_kernel_per_op", SetOpStrategy::Naive),
    ] {
        let cfg = GsiConfig {
            set_ops: strategy,
            write_cache: strategy == SetOpStrategy::GpuFriendly,
            ..GsiConfig::gsi()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_gsi(&cfg, &data, &queries, &opts).join_gld))
        });
    }
    g.finish();

    // Raw probe primitives.
    let gpu = Gpu::new(DeviceConfig::titan_xp());
    let members: Vec<u32> = (0..100_000).step_by(3).collect();
    let cand = CandidateSet {
        query_vertex: 0,
        list: std::sync::Arc::new(members),
    };
    let bitset = CandidateProbe::build(&gpu, SetOpStrategy::GpuFriendly, 100_000, &cand);
    let sorted = CandidateProbe::build(&gpu, SetOpStrategy::Naive, 100_000, &cand);
    let mut g = c.benchmark_group("sec5_probe_primitives");
    g.bench_function("bitset_probe", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for v in (0..4096u32).step_by(7) {
                hits += bitset.probe(&gpu, black_box(v)) as u32;
            }
            black_box(hits)
        })
    });
    g.bench_function("sorted_binary_search", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for v in (0..4096u32).step_by(7) {
                hits += sorted.probe(&gpu, black_box(v)) as u32;
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_strategies
}
criterion_main!(benches);
