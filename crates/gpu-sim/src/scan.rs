//! Device-wide exclusive prefix-sum scan.
//!
//! The join pipeline uses exclusive scans twice per iteration: to turn
//! per-row neighbor-list bounds into GBA offsets (Algorithm 4 line 5) and to
//! turn per-row valid counts into output offsets for the new intermediate
//! table (Algorithm 3 line 14). On hardware this is a single device-wide
//! kernel (e.g. CUB's `DeviceScan`); the simulator charges it accordingly:
//! one kernel launch, one coalesced read and one coalesced write of the
//! array, and `n` work units.

use crate::device::Gpu;

/// Exclusive prefix sum of `input`, returning `input.len() + 1` offsets —
/// `out[i]` is the sum of `input[..i]`, and `out[n]` is the grand total.
///
/// Charges the device ledger as a single scan kernel would. Panics if the
/// total overflows `u32` (device offset arrays are 4-byte, §V "each offset
/// only needs 4B").
pub fn exclusive_prefix_sum(gpu: &Gpu, input: &[u32]) -> Vec<u32> {
    let stats = gpu.stats();
    stats.record_kernel_launch();
    gpu.charge_launch_overhead();
    stats.gld_range(0, input.len(), 4);
    stats.gst_range(0, input.len() + 1, 4);
    stats.add_work(input.len() as u64);

    let mut out = Vec::with_capacity(input.len() + 1);
    let mut acc: u64 = 0;
    for &x in input {
        out.push(u32::try_from(acc).expect("prefix sum overflows 4-byte device offsets"));
        acc += u64::from(x);
    }
    out.push(u32::try_from(acc).expect("prefix sum overflows 4-byte device offsets"));
    out
}

/// Total of the scanned counts: the final offset
/// [`exclusive_prefix_sum`] appends. An empty scan totals zero, so
/// callers need no emptiness precondition.
pub fn scan_total(offsets: &[u32]) -> usize {
    offsets.last().copied().unwrap_or(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    fn gpu() -> Gpu {
        Gpu::new(DeviceConfig::test_device())
    }

    #[test]
    fn scan_basics() {
        let g = gpu();
        assert_eq!(exclusive_prefix_sum(&g, &[]), vec![0]);
        assert_eq!(exclusive_prefix_sum(&g, &[5]), vec![0, 5]);
        assert_eq!(exclusive_prefix_sum(&g, &[1, 3, 2]), vec![0, 1, 4, 6]);
    }

    #[test]
    fn scan_matches_paper_example() {
        // Fig. 9(a): counts of L^a_i = [3,1,2,2,...,3] — spot-check the head.
        let g = gpu();
        let counts = [3u32, 1, 2, 2];
        assert_eq!(exclusive_prefix_sum(&g, &counts), vec![0, 3, 4, 6, 8]);
    }

    #[test]
    fn scan_charges_one_kernel_and_memory() {
        let g = gpu();
        let input = vec![1u32; 64]; // 256B: 2 read txns; 65 outputs: 3 write txns
        g.reset_stats();
        exclusive_prefix_sum(&g, &input);
        let snap = g.stats().snapshot();
        assert_eq!(snap.kernel_launches, 1);
        assert_eq!(snap.gld_transactions, 2);
        assert_eq!(snap.gst_transactions, 3);
        assert_eq!(snap.work_units, 64);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn scan_overflow_panics() {
        let g = gpu();
        exclusive_prefix_sum(&g, &[u32::MAX, u32::MAX]);
    }

    #[test]
    fn scan_zeroes() {
        let g = gpu();
        assert_eq!(exclusive_prefix_sum(&g, &[0, 0, 0]), vec![0, 0, 0, 0]);
    }
}
