//! # gsi-gpu-sim — a software GPU execution-model simulator
//!
//! The GSI paper ([Zeng et al., ICDE 2020]) evaluates its contributions through
//! GPU memory-hierarchy metrics: global-memory **load/store transactions**
//! (GLD/GST), kernel-launch counts, shared-memory usage and wall-clock time of
//! massively parallel kernels. This crate reproduces that execution model in
//! software so the algorithms above it (PCSR, Prealloc-Combine joins,
//! GPU-friendly set operations, …) exercise the *same code paths and cost
//! model* as CUDA kernels would, without requiring GPU hardware:
//!
//! * **Warps** of 32 lanes executing in SIMD fashion ([`WARP_SIZE`]); batch
//!   helpers in [`warp`].
//! * **Global memory** accessed through 128-byte transactions with coalescing
//!   rules (consecutive, aligned accesses collapse into few transactions;
//!   scattered gathers touch one transaction per distinct segment) —
//!   [`memory::DeviceVec`] and the raw accounting API on [`stats::GpuStats`].
//! * **Shared memory** (fast, per-block, capacity-limited) — [`shared::SharedMem`].
//! * **Kernels** scheduled as blocks of warps over a pool of host worker
//!   threads — [`kernel`] — so skewed per-warp workloads produce real
//!   wall-clock imbalance, which load-balancing strategies can then repair.
//! * **Device-wide primitives**: exclusive prefix-sum scan ([`scan`]) and
//!   bitsets for O(1) membership probes ([`bitset`]).
//!
//! The simulator is *transaction- and work-accurate*, not cycle-accurate: all
//! competing strategies run on the same substrate, so relative comparisons
//! (the shape of the paper's tables) are preserved.
//!
//! ## Quick example
//!
//! ```
//! use gsi_gpu_sim::{Gpu, DeviceConfig, memory::DeviceVec, kernel};
//!
//! let gpu = Gpu::new(DeviceConfig::default());
//! let data: DeviceVec<u32> = DeviceVec::from_vec(&gpu, (0..1024).collect());
//!
//! // Launch one warp per 32-element chunk; each warp reads its chunk
//! // (a single coalesced 128B transaction).
//! let tasks: Vec<usize> = (0..32).collect();
//! kernel::launch_warp_tasks(&gpu, &tasks, |_warp_id, &chunk| {
//!     let vals = data.warp_read(chunk * 32, 32);
//!     assert_eq!(vals[0], (chunk * 32) as u32);
//! });
//! assert_eq!(gpu.stats().snapshot().gld_transactions, 32);
//! ```
//!
//! [Zeng et al., ICDE 2020]: https://arxiv.org/abs/1906.03420

pub mod bitset;
pub mod device;
pub mod kernel;
pub mod memory;
pub mod scan;
pub mod shared;
pub mod stats;
pub mod warp;

pub use bitset::DeviceBitset;
pub use device::{DeviceConfig, Gpu};
pub use kernel::{launch_blocks, launch_warp_tasks, BlockCtx, Schedule};
pub use memory::DeviceVec;
pub use shared::SharedMem;
pub use stats::{GpuStats, StatsSnapshot};
pub use warp::WARP_SIZE;
