//! Transaction and work accounting — the simulator's measurement core.
//!
//! The paper's evaluation (Tables VI, VII, XI) reports *global memory load
//! transactions* (GLD), *global memory store transactions* (GST) and query
//! time. [`GpuStats`] is the shared ledger those numbers come from: every
//! simulated memory access computes how many 128-byte transactions a real
//! warp would have issued (per the coalescing rules of §II-B, Figs. 5–6) and
//! adds them here.

use std::sync::atomic::{AtomicU64, Ordering};

/// One ledger counter, padded to its own cache line.
///
/// The ledger is charged concurrently by every worker of a parallel
/// execution backend; atomicity alone keeps the counts *exact*, but eight
/// adjacent atomics on two cache lines would ping-pong between cores.
/// Padding keeps exactness cheap under the `HostParallel` backend.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Counter(AtomicU64);

impl Counter {
    fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn zero(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Shared atomic counters for one simulated device.
///
/// All counters use relaxed ordering: they are statistics, not
/// synchronization. Accesses are batched (one update per 128-byte segment
/// batch) and each counter sits on its own cache line, so concurrent
/// kernels — including the `HostParallel` backend's worker pool — keep
/// *exact* counts with negligible contention.
#[derive(Debug)]
pub struct GpuStats {
    transaction_bytes: u64,
    gld: Counter,
    gst: Counter,
    kernel_launches: Counter,
    warp_tasks: Counter,
    work_units: Counter,
    device_allocs: Counter,
    device_alloc_bytes: Counter,
    idle_lane_work: Counter,
}

impl GpuStats {
    /// New zeroed ledger for a device with the given transaction width.
    pub fn new(transaction_bytes: usize) -> Self {
        Self {
            transaction_bytes: transaction_bytes as u64,
            gld: Counter::default(),
            gst: Counter::default(),
            kernel_launches: Counter::default(),
            warp_tasks: Counter::default(),
            work_units: Counter::default(),
            device_allocs: Counter::default(),
            device_alloc_bytes: Counter::default(),
            idle_lane_work: Counter::default(),
        }
    }

    /// Width of one global-memory transaction in bytes (128 on CUDA devices).
    pub fn transaction_bytes(&self) -> u64 {
        self.transaction_bytes
    }

    // ---- raw increments -------------------------------------------------

    /// Record `n` global-memory load transactions.
    pub fn add_gld(&self, n: u64) {
        self.gld.add(n);
    }

    /// Record `n` global-memory store transactions.
    pub fn add_gst(&self, n: u64) {
        self.gst.add(n);
    }

    /// Record one kernel launch.
    pub fn record_kernel_launch(&self) {
        self.kernel_launches.add(1);
    }

    /// Record `n` warp tasks (one per intermediate-table row handled).
    pub fn add_warp_tasks(&self, n: u64) {
        self.warp_tasks.add(n);
    }

    /// Record `n` abstract work units (elements processed by lanes).
    pub fn add_work(&self, n: u64) {
        self.work_units.add(n);
    }

    /// Record a device allocation request of `bytes` (Prealloc-Combine's GBA
    /// argument in §V is about *reducing the number of allocation requests*).
    pub fn record_alloc(&self, bytes: u64) {
        self.device_allocs.add(1);
        self.device_alloc_bytes.add(bytes);
    }

    /// Record wasted SIMD lanes (warp divergence / thread underutilization,
    /// e.g. CSR label scans where lanes holding wrong-label edges idle).
    pub fn add_idle_lanes(&self, n: u64) {
        self.idle_lane_work.add(n);
    }

    // ---- coalescing-aware accounting ------------------------------------

    /// Transactions needed for a *consecutive* access of `len` elements of
    /// `elem_bytes` bytes starting at element offset `offset` in a buffer
    /// whose element 0 is 128-byte aligned (Fig. 5: coalesced access).
    ///
    /// Returns 0 for empty ranges.
    pub fn span_transactions(&self, offset: usize, len: usize, elem_bytes: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let tb = self.transaction_bytes;
        let start = (offset * elem_bytes) as u64;
        let end = ((offset + len) * elem_bytes) as u64 - 1;
        end / tb - start / tb + 1
    }

    /// Record a coalesced warp load of a consecutive element range.
    pub fn gld_range(&self, offset: usize, len: usize, elem_bytes: usize) -> u64 {
        let n = self.span_transactions(offset, len, elem_bytes);
        self.add_gld(n);
        n
    }

    /// Record a coalesced warp store of a consecutive element range.
    pub fn gst_range(&self, offset: usize, len: usize, elem_bytes: usize) -> u64 {
        let n = self.span_transactions(offset, len, elem_bytes);
        self.add_gst(n);
        n
    }

    /// Transactions needed for a warp *gather*: up to 32 scattered element
    /// reads collapse into one transaction per distinct 128-byte segment
    /// (Fig. 6: uncoalesced access touches more segments).
    ///
    /// Ascending address sequences (the common case: a warp's lanes walk a
    /// table in index order) are counted in a single pass; out-of-order
    /// sequences fall back to a small distinct-set scan.
    pub fn gather_transactions<I>(&self, offsets: I, elem_bytes: usize) -> u64
    where
        I: IntoIterator<Item = usize>,
    {
        let tb = self.transaction_bytes;
        let mut segs = [u64::MAX; crate::warp::WARP_SIZE];
        let mut n = 0usize;
        let mut last = u64::MAX;
        let mut sorted = true;
        for off in offsets {
            let seg = (off * elem_bytes) as u64 / tb;
            if sorted {
                if last == u64::MAX || seg > last {
                    debug_assert!(n < segs.len(), "gather wider than a warp");
                    segs[n] = seg;
                    n += 1;
                    last = seg;
                    continue;
                }
                if seg == last {
                    continue;
                }
                sorted = false; // out of order: switch to distinct-set mode
            }
            if !segs[..n].contains(&seg) {
                debug_assert!(n < segs.len(), "gather wider than a warp");
                segs[n] = seg;
                n += 1;
            }
        }
        n as u64
    }

    /// Record a warp gather load of scattered elements.
    pub fn gld_gather<I>(&self, offsets: I, elem_bytes: usize) -> u64
    where
        I: IntoIterator<Item = usize>,
    {
        let n = self.gather_transactions(offsets, elem_bytes);
        self.add_gld(n);
        n
    }

    /// Record a warp scatter store of scattered elements.
    pub fn gst_scatter<I>(&self, offsets: I, elem_bytes: usize) -> u64
    where
        I: IntoIterator<Item = usize>,
    {
        let n = self.gather_transactions(offsets, elem_bytes);
        self.add_gst(n);
        n
    }

    // ---- snapshots -------------------------------------------------------

    /// Copy the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            gld_transactions: self.gld.get(),
            gst_transactions: self.gst.get(),
            kernel_launches: self.kernel_launches.get(),
            warp_tasks: self.warp_tasks.get(),
            work_units: self.work_units.get(),
            device_allocs: self.device_allocs.get(),
            device_alloc_bytes: self.device_alloc_bytes.get(),
            idle_lane_work: self.idle_lane_work.get(),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.gld.zero();
        self.gst.zero();
        self.kernel_launches.zero();
        self.warp_tasks.zero();
        self.work_units.zero();
        self.device_allocs.zero();
        self.device_alloc_bytes.zero();
        self.idle_lane_work.zero();
    }
}

/// A point-in-time copy of [`GpuStats`], with `-` for computing deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Global-memory load transactions (the paper's "GLD").
    pub gld_transactions: u64,
    /// Global-memory store transactions (the paper's "GST").
    pub gst_transactions: u64,
    /// Number of kernel launches.
    pub kernel_launches: u64,
    /// Warp tasks executed.
    pub warp_tasks: u64,
    /// Abstract work units (lane-elements processed).
    pub work_units: u64,
    /// Device allocation requests.
    pub device_allocs: u64,
    /// Bytes requested from the device allocator.
    pub device_alloc_bytes: u64,
    /// Wasted SIMD lane slots (divergence / underutilization).
    pub idle_lane_work: u64,
}

impl StatsSnapshot {
    /// Every counter as a `(metric_suffix, value)` pair, in declaration
    /// order. The single authority metrics exporters iterate, so a counter
    /// added to the ledger cannot be silently missing from the exposition
    /// (the suffix is appended to a `gsi_device_` prefix upstream).
    pub fn metric_fields(&self) -> [(&'static str, u64); 8] {
        [
            ("gld_transactions", self.gld_transactions),
            ("gst_transactions", self.gst_transactions),
            ("kernel_launches", self.kernel_launches),
            ("warp_tasks", self.warp_tasks),
            ("work_units", self.work_units),
            ("device_allocs", self.device_allocs),
            ("device_alloc_bytes", self.device_alloc_bytes),
            ("idle_lane_work", self.idle_lane_work),
        ]
    }
}

impl std::ops::Add for StatsSnapshot {
    type Output = StatsSnapshot;

    fn add(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            gld_transactions: self.gld_transactions + rhs.gld_transactions,
            gst_transactions: self.gst_transactions + rhs.gst_transactions,
            kernel_launches: self.kernel_launches + rhs.kernel_launches,
            warp_tasks: self.warp_tasks + rhs.warp_tasks,
            work_units: self.work_units + rhs.work_units,
            device_allocs: self.device_allocs + rhs.device_allocs,
            device_alloc_bytes: self.device_alloc_bytes + rhs.device_alloc_bytes,
            idle_lane_work: self.idle_lane_work + rhs.idle_lane_work,
        }
    }
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        // Device-ledger monotonicity: a snapshot delta is only meaningful
        // when `self` was taken *after* `rhs` on the same ledger — every
        // counter must have grown or held. A violation means snapshots
        // from different ledgers (or reordered reads) are being compared,
        // which would silently corrupt every derived device metric.
        #[cfg(feature = "debug-invariants")]
        for ((name, a), (_, b)) in self.metric_fields().into_iter().zip(rhs.metric_fields()) {
            assert!(
                a >= b,
                "debug-invariants: snapshot delta underflows `{name}` ({a} < {b}); \
                 the ledger only grows, so these snapshots are misordered or unrelated"
            );
        }
        StatsSnapshot {
            gld_transactions: self.gld_transactions - rhs.gld_transactions,
            gst_transactions: self.gst_transactions - rhs.gst_transactions,
            kernel_launches: self.kernel_launches - rhs.kernel_launches,
            warp_tasks: self.warp_tasks - rhs.warp_tasks,
            work_units: self.work_units - rhs.work_units,
            device_allocs: self.device_allocs - rhs.device_allocs,
            device_alloc_bytes: self.device_alloc_bytes - rhs.device_alloc_bytes,
            idle_lane_work: self.idle_lane_work - rhs.idle_lane_work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> GpuStats {
        GpuStats::new(128)
    }

    #[test]
    fn metric_fields_cover_every_counter() {
        let snap = StatsSnapshot {
            gld_transactions: 1,
            gst_transactions: 2,
            kernel_launches: 3,
            warp_tasks: 4,
            work_units: 5,
            device_allocs: 6,
            device_alloc_bytes: 7,
            idle_lane_work: 8,
        };
        let fields = snap.metric_fields();
        // All 8 distinct values present exactly once → no field skipped,
        // none double-mapped.
        let mut values: Vec<u64> = fields.iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        assert_eq!(values, [1, 2, 3, 4, 5, 6, 7, 8]);
        let mut names: Vec<&str> = fields.iter().map(|&(n, _)| n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "metric suffixes are unique");
    }

    #[test]
    fn span_single_transaction() {
        // 32 u32 = 128B exactly, aligned: one transaction (Fig. 5).
        assert_eq!(stats().span_transactions(0, 32, 4), 1);
    }

    #[test]
    fn span_unaligned_crosses_boundary() {
        // 32 u32 starting at element 16: bytes 64..192 span two segments.
        assert_eq!(stats().span_transactions(16, 32, 4), 2);
    }

    #[test]
    fn span_empty_is_zero() {
        assert_eq!(stats().span_transactions(7, 0, 4), 0);
    }

    #[test]
    fn span_large_range() {
        // 1000 u32 = 4000B starting aligned: ceil plus boundary = 32 segments.
        assert_eq!(stats().span_transactions(0, 1000, 4), 32);
    }

    #[test]
    fn span_single_element() {
        assert_eq!(stats().span_transactions(1_000_000, 1, 4), 1);
    }

    #[test]
    fn gather_same_segment_is_one() {
        // All addresses inside one 128B segment: one transaction.
        let s = stats();
        assert_eq!(s.gather_transactions([0usize, 5, 17, 31], 4), 1);
    }

    #[test]
    fn gather_distinct_segments() {
        // Stride of 32 u32 = 128B: every lane in its own segment (Fig. 6).
        let s = stats();
        let offs: Vec<usize> = (0..32).map(|i| i * 32).collect();
        assert_eq!(s.gather_transactions(offs, 4), 32);
    }

    #[test]
    fn gather_empty() {
        assert_eq!(stats().gather_transactions(std::iter::empty(), 4), 0);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let s = stats();
        s.gld_range(0, 64, 4);
        s.gst_range(0, 32, 4);
        s.record_kernel_launch();
        s.add_warp_tasks(3);
        s.add_work(100);
        s.record_alloc(4096);
        s.add_idle_lanes(12);
        let snap = s.snapshot();
        assert_eq!(snap.gld_transactions, 2);
        assert_eq!(snap.gst_transactions, 1);
        assert_eq!(snap.kernel_launches, 1);
        assert_eq!(snap.warp_tasks, 3);
        assert_eq!(snap.work_units, 100);
        assert_eq!(snap.device_allocs, 1);
        assert_eq!(snap.device_alloc_bytes, 4096);
        assert_eq!(snap.idle_lane_work, 12);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn snapshot_delta() {
        let s = stats();
        s.add_gld(10);
        let before = s.snapshot();
        s.add_gld(7);
        let delta = s.snapshot() - before;
        assert_eq!(delta.gld_transactions, 7);
    }

    #[cfg(feature = "debug-invariants")]
    #[test]
    #[should_panic(expected = "debug-invariants: snapshot delta underflows `gld_transactions`")]
    fn sanitizer_catches_misordered_snapshots() {
        let s = stats();
        s.add_gld(10);
        let after = s.snapshot();
        s.add_gld(5);
        let _ = after - s.snapshot();
    }
}
