//! Per-block shared memory: a fast, capacity-limited scratch arena.
//!
//! On real hardware, shared memory is a 48 KB programmable cache per SM whose
//! access latency rivals registers (§II-B). In the simulator, *contents* live
//! in ordinary host memory (free to access, like the hardware's near-register
//! latency), but **capacity is enforced**: kernels must claim their buffers
//! through [`SharedMem`] and over-subscription panics, which keeps simulated
//! kernels honest about what would actually fit on a Titan XP.

/// Capacity tracker for one block's shared memory.
#[derive(Debug)]
pub struct SharedMem {
    capacity: usize,
    used: usize,
    high_water: usize,
}

impl SharedMem {
    /// A block arena with `capacity` bytes (48 KB on the paper's Titan XP).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            used: 0,
            high_water: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently claimed.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Largest concurrent usage observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.capacity - self.used
    }

    /// Claim `bytes`; returns `false` (claiming nothing) if it would not fit.
    pub fn try_claim(&mut self, bytes: usize) -> bool {
        if bytes > self.remaining() {
            return false;
        }
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        true
    }

    /// Claim `bytes`, panicking on over-subscription — the simulated analogue
    /// of a kernel that fails to launch because its shared-memory request
    /// exceeds the device limit.
    pub fn claim(&mut self, bytes: usize) {
        assert!(
            self.try_claim(bytes),
            "shared memory over-subscribed: requested {bytes}B with {}B of {}B free",
            self.remaining(),
            self.capacity
        );
    }

    /// Release `bytes` previously claimed.
    pub fn release(&mut self, bytes: usize) {
        debug_assert!(bytes <= self.used, "releasing more than claimed");
        self.used = self.used.saturating_sub(bytes);
    }

    /// Allocate a zeroed `u32` scratch buffer from this arena, claiming its
    /// bytes. The caller releases the claim by dropping the buffer length via
    /// [`SharedMem::release`] when the block finishes with it.
    pub fn alloc_u32(&mut self, len: usize) -> Vec<u32> {
        self.claim(len * 4);
        vec![0u32; len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_and_releases() {
        let mut sm = SharedMem::new(1024);
        sm.claim(512);
        assert_eq!(sm.used(), 512);
        assert_eq!(sm.remaining(), 512);
        sm.release(256);
        assert_eq!(sm.used(), 256);
        assert_eq!(sm.high_water(), 512);
    }

    #[test]
    fn try_claim_refuses_oversubscription() {
        let mut sm = SharedMem::new(100);
        assert!(sm.try_claim(100));
        assert!(!sm.try_claim(1));
        assert_eq!(sm.used(), 100);
    }

    #[test]
    #[should_panic(expected = "over-subscribed")]
    fn claim_panics_when_full() {
        let mut sm = SharedMem::new(10);
        sm.claim(11);
    }

    #[test]
    fn alloc_u32_accounts_bytes() {
        let mut sm = SharedMem::new(48 * 1024);
        let buf = sm.alloc_u32(32); // one 128B write-cache line
        assert_eq!(buf.len(), 32);
        assert_eq!(sm.used(), 128);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut sm = SharedMem::new(1000);
        sm.claim(700);
        sm.release(700);
        sm.claim(100);
        assert_eq!(sm.high_water(), 700);
    }
}
