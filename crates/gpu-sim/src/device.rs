//! Device description and the [`Gpu`] handle shared by all simulated kernels.

use std::sync::Arc;

use crate::stats::GpuStats;

/// Static description of the simulated device.
///
/// Defaults mirror the NVIDIA Titan XP used in the paper's evaluation
/// (30 SMs × 128 cores, 48 KB shared memory per SM, 12 GB global memory,
/// 128-byte global-memory transactions, 32-thread warps, 1024-thread blocks).
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Threads per warp. The paper (and CUDA) fix this at 32.
    pub warp_size: usize,
    /// Maximum threads per block (CUDA: 1024 ⇒ 32 warps per block).
    pub max_block_threads: usize,
    /// Shared memory available to one block, in bytes (Titan XP: 48 KB).
    pub shared_mem_per_block: usize,
    /// Width of one global-memory transaction, in bytes (CUDA: 128).
    pub transaction_bytes: usize,
    /// Global memory capacity in bytes (informational; allocations are
    /// tracked against it but the host allocator is the real backing store).
    pub global_mem_bytes: usize,
    /// Emulated fixed cost of launching a kernel, in nanoseconds. Real CUDA
    /// launches cost a few microseconds; the "naive set operation" baseline
    /// of §V pays this per set operation, which is why it loses.
    pub kernel_launch_overhead_ns: u64,
    /// Host worker threads that play the role of SMs when executing blocks.
    /// `0` means "use all available parallelism".
    pub worker_threads: usize,
    /// Emulated global-memory latency, in nanoseconds per streamed element.
    ///
    /// `0` (the default) disables latency modeling: kernels cost only the
    /// host compute that simulates them. When set, execution backends charge
    /// each block's streamed workload as *sleep* time on the worker that ran
    /// it — sleeping workers overlap exactly like real SMs hide memory
    /// latency, so intra-query parallelism shows up as genuine wall-clock
    /// speedup even on a host with fewer cores than workers.
    pub stream_latency_ns: u64,
}

impl DeviceConfig {
    /// Configuration mirroring the paper's NVIDIA Titan XP test machine.
    pub fn titan_xp() -> Self {
        Self {
            num_sms: 30,
            cores_per_sm: 128,
            warp_size: 32,
            max_block_threads: 1024,
            shared_mem_per_block: 48 * 1024,
            transaction_bytes: 128,
            global_mem_bytes: 12 * 1024 * 1024 * 1024,
            kernel_launch_overhead_ns: 1_500,
            worker_threads: 0,
            stream_latency_ns: 0,
        }
    }

    /// A tiny single-threaded device, useful for deterministic unit tests.
    pub fn test_device() -> Self {
        Self {
            worker_threads: 1,
            kernel_launch_overhead_ns: 0,
            ..Self::titan_xp()
        }
    }

    /// Warps per full block (`max_block_threads / warp_size`).
    pub fn warps_per_block(&self) -> usize {
        self.max_block_threads / self.warp_size
    }

    /// Resolved number of host worker threads.
    pub fn resolved_workers(&self) -> usize {
        if self.worker_threads > 0 {
            self.worker_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::titan_xp()
    }
}

/// Handle to a simulated GPU: configuration plus shared statistic counters.
///
/// Cheap to clone (counters are behind an [`Arc`]); every simulated kernel,
/// device buffer and primitive charges its memory transactions and work
/// against the same [`GpuStats`].
#[derive(Debug, Clone)]
pub struct Gpu {
    cfg: DeviceConfig,
    stats: Arc<GpuStats>,
}

impl Gpu {
    /// Create a device with the given configuration and zeroed counters.
    pub fn new(cfg: DeviceConfig) -> Self {
        let stats = Arc::new(GpuStats::new(cfg.transaction_bytes));
        Self { cfg, stats }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// The shared statistic counters.
    pub fn stats(&self) -> &GpuStats {
        &self.stats
    }

    /// Shared-ownership handle to the counters, for device buffers that must
    /// outlive borrows of the `Gpu`.
    pub(crate) fn stats_arc(&self) -> &Arc<GpuStats> {
        &self.stats
    }

    /// Reset all counters to zero (e.g. between the offline build phase and
    /// the measured query phase).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Busy-wait for the configured kernel-launch overhead. Used by code
    /// paths that emulate launching a (small) dedicated kernel, such as the
    /// naive one-kernel-per-set-operation baseline.
    pub fn charge_launch_overhead(&self) {
        let ns = self.cfg.kernel_launch_overhead_ns;
        if ns == 0 {
            return;
        }
        let start = std::time::Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }
}

impl Default for Gpu {
    fn default() -> Self {
        Self::new(DeviceConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_xp_shape() {
        let cfg = DeviceConfig::titan_xp();
        assert_eq!(cfg.warp_size, 32);
        assert_eq!(cfg.warps_per_block(), 32);
        assert_eq!(cfg.transaction_bytes, 128);
        assert_eq!(cfg.shared_mem_per_block, 48 * 1024);
    }

    #[test]
    fn resolved_workers_explicit() {
        let mut cfg = DeviceConfig::test_device();
        cfg.worker_threads = 3;
        assert_eq!(cfg.resolved_workers(), 3);
    }

    #[test]
    fn resolved_workers_auto_is_positive() {
        let mut cfg = DeviceConfig::titan_xp();
        cfg.worker_threads = 0;
        assert!(cfg.resolved_workers() >= 1);
    }

    #[test]
    fn gpu_clone_shares_stats() {
        let gpu = Gpu::new(DeviceConfig::test_device());
        let clone = gpu.clone();
        gpu.stats().add_gld(5);
        assert_eq!(clone.stats().snapshot().gld_transactions, 5);
    }

    #[test]
    fn reset_clears_counters() {
        let gpu = Gpu::new(DeviceConfig::test_device());
        gpu.stats().add_gld(7);
        gpu.stats().add_gst(3);
        gpu.reset_stats();
        let snap = gpu.stats().snapshot();
        assert_eq!(snap.gld_transactions, 0);
        assert_eq!(snap.gst_transactions, 0);
    }

    #[test]
    fn launch_overhead_zero_is_noop() {
        let gpu = Gpu::new(DeviceConfig::test_device());
        let t = std::time::Instant::now();
        gpu.charge_launch_overhead();
        assert!(t.elapsed().as_millis() < 50);
    }
}
