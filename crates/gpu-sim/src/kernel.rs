//! Kernel launch and block scheduling.
//!
//! A simulated kernel is a set of *warp tasks* (in GSI, one task per
//! intermediate-table row — Algorithm 3 line 7). Tasks are grouped into
//! blocks of `warps_per_block` warps; blocks execute on a pool of host
//! worker threads playing the role of SMs. Within a block, warps run
//! sequentially on one thread — mirroring the fact that a block is resident
//! on a single SM — so a block's wall time is the sum of its warps' work and
//! *skewed per-warp workloads produce real imbalance*, which §VI-A's 4-layer
//! load-balance scheme then measurably repairs.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::device::Gpu;
use crate::shared::SharedMem;

/// How blocks are assigned to worker threads (SMs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Contiguous chunks of blocks per worker, fixed up front. Most sensitive
    /// to inter-block imbalance; models a naive grid-stride assignment.
    Static,
    /// Workers pull the next block from a shared counter as they finish —
    /// the hardware-like greedy block scheduler.
    #[default]
    Dynamic,
}

/// Per-block execution context handed to the kernel body.
#[derive(Debug)]
pub struct BlockCtx {
    /// Index of this block within the grid.
    pub block_id: usize,
    /// Global index of the block's first warp task.
    pub first_task: usize,
    /// The block's shared-memory arena (capacity-enforced).
    pub shared: SharedMem,
}

/// Launch a kernel whose body processes one *block* of warp tasks at a time.
///
/// `f` is invoked once per block with the block context and the slice of
/// tasks owned by that block's warps; it should iterate the slice, treating
/// each element as one warp's assignment. Records one kernel launch, charges
/// the configured launch overhead, and counts `tasks.len()` warp tasks.
pub fn launch_blocks<T, F>(gpu: &Gpu, tasks: &[T], warps_per_block: usize, sched: Schedule, f: F)
where
    T: Sync,
    F: Fn(&mut BlockCtx, &[T]) + Sync,
{
    let stats = gpu.stats();
    stats.record_kernel_launch();
    gpu.charge_launch_overhead();
    stats.add_warp_tasks(tasks.len() as u64);
    if tasks.is_empty() {
        return;
    }

    let wpb = warps_per_block.clamp(1, gpu.config().warps_per_block());
    let num_blocks = tasks.len().div_ceil(wpb);
    let shared_cap = gpu.config().shared_mem_per_block;

    let run_block = |block_id: usize| {
        let first = block_id * wpb;
        let end = (first + wpb).min(tasks.len());
        let mut ctx = BlockCtx {
            block_id,
            first_task: first,
            shared: SharedMem::new(shared_cap),
        };
        f(&mut ctx, &tasks[first..end]);
    };

    // Small launches run inline: spawning host threads costs ~50 µs each,
    // far more than a real kernel launch, and would drown the measurement.
    // Launches big enough for wall-clock signal get the full pool.
    let workers = if tasks.len() < 4096 {
        1
    } else {
        gpu.config().resolved_workers().min(num_blocks)
    };
    if workers <= 1 {
        for b in 0..num_blocks {
            run_block(b);
        }
        return;
    }

    // std's scope reports child panics with its own opaque message; translate
    // it so callers (and tests) see the simulator's "worker panicked" framing.
    let scoped = |f: &(dyn Fn() + Sync)| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .unwrap_or_else(|_| panic!("simulated kernel worker panicked"))
    };

    match sched {
        Schedule::Dynamic => {
            let next = AtomicUsize::new(0);
            scoped(&|| {
                std::thread::scope(|s| {
                    for _ in 0..workers {
                        s.spawn(|| loop {
                            let b = next.fetch_add(1, Ordering::Relaxed);
                            if b >= num_blocks {
                                break;
                            }
                            run_block(b);
                        });
                    }
                });
            });
        }
        Schedule::Static => {
            let per_worker = num_blocks.div_ceil(workers);
            scoped(&|| {
                std::thread::scope(|s| {
                    for w in 0..workers {
                        let lo = w * per_worker;
                        let hi = ((w + 1) * per_worker).min(num_blocks);
                        let run_block = &run_block;
                        s.spawn(move || {
                            for b in lo..hi {
                                run_block(b);
                            }
                        });
                    }
                });
            });
        }
    }
}

/// Launch a kernel over an *explicit* worker pool with per-worker state.
///
/// This is the primitive execution backends build on: the caller decides how
/// many host workers play SM (`states.len()` — the legacy heuristic of
/// [`launch_blocks`] is bypassed), and each worker carries a private mutable
/// state `S` (e.g. a shard of the output table) that `f` can write without
/// synchronization. Blocks are pulled dynamically from a shared counter, so
/// per-worker block sets depend on timing — callers needing determinism must
/// make `f`'s effects order-independent (the ledger's atomic sums and keyed
/// output segments both are).
///
/// Records one kernel launch, charges the configured launch overhead, counts
/// `tasks.len()` warp tasks, and returns the worker states. With a single
/// state (or a single block) the launch runs inline on the calling thread —
/// the faithful sequential simulation.
pub fn launch_blocks_stateful<T, S, F>(
    gpu: &Gpu,
    tasks: &[T],
    warps_per_block: usize,
    mut states: Vec<S>,
    f: F,
) -> Vec<S>
where
    T: Sync,
    S: Send,
    F: Fn(&mut BlockCtx, &[T], &mut S) + Sync,
{
    assert!(!states.is_empty(), "at least one worker state required");
    let stats = gpu.stats();
    stats.record_kernel_launch();
    gpu.charge_launch_overhead();
    stats.add_warp_tasks(tasks.len() as u64);
    if tasks.is_empty() {
        return states;
    }

    let wpb = warps_per_block.clamp(1, gpu.config().warps_per_block());
    let num_blocks = tasks.len().div_ceil(wpb);
    let shared_cap = gpu.config().shared_mem_per_block;

    let run_block = |block_id: usize, state: &mut S| {
        let first = block_id * wpb;
        let end = (first + wpb).min(tasks.len());
        let mut ctx = BlockCtx {
            block_id,
            first_task: first,
            shared: SharedMem::new(shared_cap),
        };
        f(&mut ctx, &tasks[first..end], state);
    };

    if states.len() == 1 || num_blocks == 1 {
        let state = &mut states[0];
        for b in 0..num_blocks {
            run_block(b, state);
        }
        return states;
    }

    let next = AtomicUsize::new(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            // More states than blocks: the excess workers never start.
            for state in states.iter_mut().take(num_blocks) {
                let next = &next;
                let run_block = &run_block;
                s.spawn(move || loop {
                    let b = next.fetch_add(1, Ordering::Relaxed);
                    if b >= num_blocks {
                        break;
                    }
                    run_block(b, state);
                });
            }
        });
    }));
    result.unwrap_or_else(|_| panic!("simulated kernel worker panicked"));
    states
}

/// Launch a kernel with one warp per task, using full blocks and the dynamic
/// scheduler. `f` receives the global warp (task) id and the task itself.
pub fn launch_warp_tasks<T, F>(gpu: &Gpu, tasks: &[T], f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    let wpb = gpu.config().warps_per_block();
    launch_blocks(gpu, tasks, wpb, Schedule::Dynamic, |ctx, block_tasks| {
        for (i, t) in block_tasks.iter().enumerate() {
            f(ctx.first_task + i, t);
        }
    });
}

/// Launch one warp per task and collect each task's result, in task order.
pub fn launch_map<T, R, F>(gpu: &Gpu, tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    use parking_lot::Mutex;
    let slots: Vec<Mutex<Option<R>>> = (0..tasks.len()).map(|_| Mutex::new(None)).collect();
    launch_warp_tasks(gpu, tasks, |wid, t| {
        *slots[wid].lock() = Some(f(wid, t));
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("task produced no result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use std::sync::atomic::AtomicU64;

    fn gpu(workers: usize) -> Gpu {
        let mut cfg = DeviceConfig::test_device();
        cfg.worker_threads = workers;
        Gpu::new(cfg)
    }

    #[test]
    fn every_task_runs_exactly_once() {
        for workers in [1, 4] {
            let g = gpu(workers);
            let n = 1000;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let tasks: Vec<usize> = (0..n).collect();
            launch_warp_tasks(&g, &tasks, |_wid, &t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn warp_ids_match_tasks() {
        let g = gpu(1);
        let tasks: Vec<u32> = (0..100).collect();
        launch_warp_tasks(&g, &tasks, |wid, &t| {
            assert_eq!(wid as u32, t);
        });
    }

    #[test]
    fn records_launch_and_warp_tasks() {
        let g = gpu(2);
        let tasks = vec![(); 65];
        launch_blocks(&g, &tasks, 32, Schedule::Dynamic, |_, _| {});
        let snap = g.stats().snapshot();
        assert_eq!(snap.kernel_launches, 1);
        assert_eq!(snap.warp_tasks, 65);
    }

    #[test]
    fn empty_launch_still_counts_kernel() {
        let g = gpu(2);
        let tasks: Vec<u32> = vec![];
        launch_blocks(&g, &tasks, 32, Schedule::Dynamic, |_, _| {});
        assert_eq!(g.stats().snapshot().kernel_launches, 1);
    }

    #[test]
    fn block_partitioning_covers_all_tasks() {
        let g = gpu(3);
        let tasks: Vec<usize> = (0..77).collect();
        let seen: Vec<AtomicU64> = (0..77).map(|_| AtomicU64::new(0)).collect();
        launch_blocks(&g, &tasks, 8, Schedule::Static, |ctx, block| {
            assert!(block.len() <= 8);
            assert_eq!(ctx.first_task % 8, 0);
            for t in block {
                seen[*t].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(seen.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn shared_memory_capacity_is_device_limit() {
        let g = gpu(1);
        let tasks = vec![()];
        launch_blocks(&g, &tasks, 32, Schedule::Dynamic, |ctx, _| {
            assert_eq!(ctx.shared.capacity(), 48 * 1024);
        });
    }

    #[test]
    fn warps_per_block_is_clamped() {
        let g = gpu(1);
        let tasks = vec![0u32; 100];
        // Request an over-wide block; the launcher clamps to the device max.
        launch_blocks(&g, &tasks, 10_000, Schedule::Dynamic, |_, block| {
            assert!(block.len() <= 32);
        });
    }

    #[test]
    fn launch_map_collects_in_task_order() {
        let g = gpu(4);
        let tasks: Vec<u32> = (0..5000).collect();
        let out = launch_map(&g, &tasks, |wid, &t| {
            assert_eq!(wid as u32, t);
            t * 2
        });
        assert_eq!(out.len(), 5000);
        assert!(out.iter().enumerate().all(|(i, &r)| r == 2 * i as u32));
    }

    #[test]
    fn launch_map_empty() {
        let g = gpu(2);
        let tasks: Vec<u32> = vec![];
        let out: Vec<u32> = launch_map(&g, &tasks, |_, &t| t);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn kernel_panics_propagate_from_workers() {
        let g = gpu(4);
        // Large enough to take the threaded path.
        let tasks: Vec<usize> = (0..10_000).collect();
        launch_warp_tasks(&g, &tasks, |_wid, &t| {
            assert!(t < 9_999, "injected fault");
        });
    }

    #[test]
    fn stateful_launch_covers_all_tasks_and_returns_states() {
        for workers in [1, 3, 8] {
            let g = gpu(1);
            let n = 500;
            let tasks: Vec<usize> = (0..n).collect();
            let states: Vec<Vec<usize>> = vec![Vec::new(); workers];
            let states = launch_blocks_stateful(
                &g,
                &tasks,
                8,
                states,
                |_ctx, block, seen: &mut Vec<usize>| {
                    seen.extend(block.iter().copied());
                },
            );
            assert_eq!(states.len(), workers);
            let mut all: Vec<usize> = states.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, tasks, "workers={workers}");
        }
    }

    #[test]
    fn stateful_launch_records_stats_once() {
        let g = gpu(1);
        let tasks = vec![(); 65];
        launch_blocks_stateful(&g, &tasks, 32, vec![(), ()], |_, _, _| {});
        let snap = g.stats().snapshot();
        assert_eq!(snap.kernel_launches, 1);
        assert_eq!(snap.warp_tasks, 65);
    }

    #[test]
    fn stateful_launch_empty_tasks() {
        let g = gpu(1);
        let tasks: Vec<u32> = vec![];
        let states = launch_blocks_stateful(&g, &tasks, 32, vec![0u32; 4], |_, _, _| {
            panic!("no block should run");
        });
        assert_eq!(states, vec![0; 4]);
        assert_eq!(g.stats().snapshot().kernel_launches, 1);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn stateful_launch_propagates_worker_panics() {
        let g = gpu(1);
        let tasks: Vec<usize> = (0..200).collect();
        launch_blocks_stateful(&g, &tasks, 8, vec![(), (), ()], |_ctx, block, _| {
            assert!(block.iter().all(|&t| t < 199), "injected fault");
        });
    }

    #[test]
    fn static_schedule_covers_all_tasks_multithreaded() {
        let g = gpu(6);
        let n = 9_000; // above the inline threshold
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let tasks: Vec<usize> = (0..n).collect();
        launch_blocks(&g, &tasks, 32, Schedule::Static, |_ctx, block| {
            for &t in block {
                hits[t].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
