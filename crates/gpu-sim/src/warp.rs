//! Warp-level helpers: SIMD batch iteration and divergence accounting.
//!
//! Simulated kernels are written *warp-centric*, exactly as the paper's
//! kernels assign "a unique warp `w_i` to deal with row `m_i`" (Algorithm 3).
//! A warp processes data in lockstep batches of [`WARP_SIZE`] elements; when
//! fewer than 32 lanes have useful work the remainder is *divergence /
//! underutilization* (§II-B), which the simulator can account via
//! [`crate::stats::GpuStats::add_idle_lanes`].

use std::ops::Range;

/// Threads per warp (CUDA fixes this at 32).
pub const WARP_SIZE: usize = 32;

/// Iterate over `0..len` in warp-sized batches, yielding index ranges.
///
/// ```
/// use gsi_gpu_sim::warp::warp_batches;
/// let batches: Vec<_> = warp_batches(70).collect();
/// assert_eq!(batches, vec![0..32, 32..64, 64..70]);
/// ```
pub fn warp_batches(len: usize) -> impl Iterator<Item = Range<usize>> {
    (0..len.div_ceil(WARP_SIZE)).map(move |b| {
        let start = b * WARP_SIZE;
        start..(start + WARP_SIZE).min(len)
    })
}

/// Number of warp-sized SIMD steps needed to cover `len` lanes of work.
pub fn warp_steps(len: usize) -> usize {
    len.div_ceil(WARP_SIZE)
}

/// Idle lane slots when a warp covers `len` elements: the last batch leaves
/// `32 - len % 32` lanes inactive (zero when `len` is a multiple of 32).
pub fn idle_lanes(len: usize) -> usize {
    if len == 0 {
        0
    } else {
        warp_steps(len) * WARP_SIZE - len
    }
}

/// Divergence accounting for a predicated warp pass: given how many of the
/// `active` lanes take the branch, the remaining lanes stall for the branch
/// body (SIMD lockstep, §II-B "warp divergence").
pub fn divergent_idle(active: usize, taking_branch: usize) -> usize {
    debug_assert!(taking_branch <= active);
    if taking_branch == 0 {
        0
    } else {
        active - taking_branch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_exact_multiple() {
        let b: Vec<_> = warp_batches(64).collect();
        assert_eq!(b, vec![0..32, 32..64]);
    }

    #[test]
    fn batches_empty() {
        assert_eq!(warp_batches(0).count(), 0);
    }

    #[test]
    fn batches_partial_tail() {
        let b: Vec<_> = warp_batches(33).collect();
        assert_eq!(b, vec![0..32, 32..33]);
    }

    #[test]
    fn steps() {
        assert_eq!(warp_steps(0), 0);
        assert_eq!(warp_steps(1), 1);
        assert_eq!(warp_steps(32), 1);
        assert_eq!(warp_steps(33), 2);
    }

    #[test]
    fn idle_lane_count() {
        assert_eq!(idle_lanes(0), 0);
        assert_eq!(idle_lanes(32), 0);
        assert_eq!(idle_lanes(1), 31);
        assert_eq!(idle_lanes(33), 31);
    }

    #[test]
    fn divergence() {
        assert_eq!(divergent_idle(32, 32), 0);
        assert_eq!(divergent_idle(32, 1), 31);
        // If no lane takes the branch the body is skipped entirely.
        assert_eq!(divergent_idle(32, 0), 0);
    }
}
