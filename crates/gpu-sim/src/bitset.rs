//! Device-resident bitsets for O(1) membership probes.
//!
//! §V's GPU-friendly set operation transforms the *large* candidate set
//! `C(u)` into a bitset so that membership of a vertex can be decided with
//! "exactly one memory transaction". [`DeviceBitset`] reproduces that: a
//! probe gathers one 4-byte word from global memory, and a warp's 32
//! concurrent probes are coalesced by distinct 128-byte segment, exactly
//! like any other gather.

use crate::device::Gpu;
use crate::memory::DeviceVec;

/// A fixed-capacity bitset in simulated global memory.
#[derive(Debug, Clone)]
pub struct DeviceBitset {
    words: DeviceVec<u32>,
    nbits: usize,
    ones: usize,
}

impl DeviceBitset {
    /// Build a bitset of `nbits` capacity with the given member ids set.
    ///
    /// Charges the build cost: a kernel scatter-writes one word per member
    /// (batched per warp, coalescing members that share a segment).
    pub fn from_members(gpu: &Gpu, nbits: usize, members: &[u32]) -> Self {
        let n_words = nbits.div_ceil(32);
        let mut words: DeviceVec<u32> = DeviceVec::zeroed(gpu, n_words);
        let stats = gpu.stats();
        for batch in members.chunks(crate::warp::WARP_SIZE) {
            stats.gst_scatter(batch.iter().map(|&v| v as usize / 32), 4);
            stats.add_work(batch.len() as u64);
            for &v in batch {
                let v = v as usize;
                debug_assert!(v < nbits, "member {v} out of bitset range {nbits}");
                words.as_mut_slice()[v / 32] |= 1 << (v % 32);
            }
        }
        Self {
            words,
            nbits,
            ones: members.len(),
        }
    }

    /// Bit capacity.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Bytes of global memory held.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Host-side membership check (no transactions charged).
    pub fn contains_host(&self, v: u32) -> bool {
        let v = v as usize;
        v < self.nbits && self.words.as_slice()[v / 32] & (1 << (v % 32)) != 0
    }

    /// Warp probe: decide membership for up to 32 vertices, charging one GLD
    /// transaction per distinct 128-byte segment among the probed words.
    pub fn warp_probe(&self, vs: &[u32], out: &mut Vec<bool>) {
        debug_assert!(vs.len() <= crate::warp::WARP_SIZE);
        let stats_offsets = vs.iter().map(|&v| v as usize / 32);
        // Reuse the gather accounting of the backing buffer.
        self.words
            .warp_gather(&stats_offsets.collect::<Vec<_>>())
            .iter()
            .zip(vs)
            .for_each(|(&word, &v)| out.push(word & (1 << (v % 32)) != 0));
    }

    /// Single-lane probe: one transaction, as the paper states.
    pub fn probe_one(&self, v: u32) -> bool {
        let word = self.words.warp_read_one(v as usize / 32);
        word & (1 << (v % 32)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    fn gpu() -> Gpu {
        Gpu::new(DeviceConfig::test_device())
    }

    #[test]
    fn membership_roundtrip() {
        let g = gpu();
        let members = vec![0, 5, 31, 32, 1000];
        let bs = DeviceBitset::from_members(&g, 1024, &members);
        for &m in &members {
            assert!(bs.contains_host(m), "missing member {m}");
        }
        assert!(!bs.contains_host(1));
        assert!(!bs.contains_host(999));
        assert_eq!(bs.count_ones(), 5);
    }

    #[test]
    fn out_of_range_is_absent() {
        let g = gpu();
        let bs = DeviceBitset::from_members(&g, 64, &[3]);
        assert!(!bs.contains_host(64));
        assert!(!bs.contains_host(u32::MAX));
    }

    #[test]
    fn probe_one_costs_one_transaction() {
        let g = gpu();
        let bs = DeviceBitset::from_members(&g, 1 << 20, &[77]);
        g.reset_stats();
        assert!(bs.probe_one(77));
        assert!(!bs.probe_one(78));
        assert_eq!(g.stats().snapshot().gld_transactions, 2);
    }

    #[test]
    fn warp_probe_coalesces_nearby_words() {
        let g = gpu();
        let bs = DeviceBitset::from_members(&g, 1 << 20, &[0, 1, 2, 3]);
        g.reset_stats();
        let mut out = Vec::new();
        // 32 probes all landing in the first bitset word: one segment.
        let vs: Vec<u32> = (0..32).collect();
        bs.warp_probe(&vs, &mut out);
        assert_eq!(g.stats().snapshot().gld_transactions, 1);
        assert_eq!(out.iter().filter(|&&b| b).count(), 4);
    }

    #[test]
    fn warp_probe_scattered_words() {
        let g = gpu();
        let nbits = 1 << 22;
        let bs = DeviceBitset::from_members(&g, nbits, &[]);
        g.reset_stats();
        let mut out = Vec::new();
        // Probes 128*32 bits apart: each lands in its own 128B segment.
        let vs: Vec<u32> = (0..32).map(|i| i * 128 * 32).collect();
        bs.warp_probe(&vs, &mut out);
        assert_eq!(g.stats().snapshot().gld_transactions, 32);
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    fn build_cost_counts_stores() {
        let g = gpu();
        g.reset_stats();
        let _bs = DeviceBitset::from_members(&g, 4096, &[0, 1, 2, 3]);
        // All four members share the first word: one scatter transaction.
        assert_eq!(g.stats().snapshot().gst_transactions, 1);
    }
}
