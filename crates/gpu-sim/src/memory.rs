//! Simulated global-memory buffers with transaction accounting.
//!
//! A [`DeviceVec`] behaves like device global memory: element 0 is assumed to
//! sit on a 128-byte transaction boundary (as `cudaMalloc` guarantees), and
//! every *warp-visible* access reports the coalesced transaction count to the
//! device ledger. Host-side accessors (`as_slice`, indexing) are free — they
//! model the algorithm author's view, not a device access — so structures can
//! be built and verified without perturbing measurements.

use crate::device::Gpu;
use crate::stats::GpuStats;
use std::sync::Arc;

/// Where a [`DeviceVec`]'s contents live on the host side.
///
/// `Shared` models a device buffer whose host image is an `Arc`'d list some
/// other subsystem already owns (e.g. a filter cache's candidate list): the
/// *device* still pays one allocation of the full size, but the host never
/// copies the vector. Mutation promotes to an owned copy on demand.
#[derive(Debug, Clone)]
enum Backing<T> {
    Owned(Vec<T>),
    Shared(Arc<Vec<T>>),
}

impl<T> Backing<T> {
    fn as_slice(&self) -> &[T] {
        match self {
            Backing::Owned(v) => v,
            Backing::Shared(a) => a,
        }
    }
}

/// A global-memory buffer of `T` with warp-access accounting.
#[derive(Debug, Clone)]
pub struct DeviceVec<T> {
    data: Backing<T>,
    stats: Arc<GpuStats>,
}

impl<T: Copy> DeviceVec<T> {
    /// Allocate from an existing host vector (counts one device allocation).
    pub fn from_vec(gpu: &Gpu, data: Vec<T>) -> Self {
        let stats = gpu.stats();
        stats.record_alloc((data.len() * std::mem::size_of::<T>()) as u64);
        Self {
            data: Backing::Owned(data),
            stats: Arc::clone(stats_arc(gpu)),
        }
    }

    /// Allocate from a shared host vector *without copying it*: the device
    /// ledger records exactly the allocation [`DeviceVec::from_vec`] would
    /// (the device-side copy is real either way), but the host image is the
    /// `Arc` itself — repeated builds over one cached candidate list stop
    /// cloning it.
    pub fn from_shared(gpu: &Gpu, data: Arc<Vec<T>>) -> Self {
        let stats = gpu.stats();
        stats.record_alloc((data.len() * std::mem::size_of::<T>()) as u64);
        Self {
            data: Backing::Shared(data),
            stats: Arc::clone(stats_arc(gpu)),
        }
    }

    /// Allocate `len` zero-initialized elements (counts one device allocation).
    pub fn zeroed(gpu: &Gpu, len: usize) -> Self
    where
        T: Default,
    {
        Self::from_vec(gpu, vec![T::default(); len])
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.as_slice().is_empty()
    }

    /// Host view of the contents (no transactions charged).
    pub fn as_slice(&self) -> &[T] {
        self.data.as_slice()
    }

    /// Mutable host view (no transactions charged). A shared backing is
    /// promoted to an owned copy first (copy-on-write).
    pub fn as_mut_slice(&mut self) -> &mut [T]
    where
        T: Clone,
    {
        if let Backing::Shared(a) = &self.data {
            self.data = Backing::Owned(a.as_ref().clone());
        }
        match &mut self.data {
            Backing::Owned(v) => v,
            Backing::Shared(_) => unreachable!("promoted above"),
        }
    }

    /// Consume into the backing vector (a still-shared backing is cloned).
    pub fn into_vec(self) -> Vec<T>
    where
        T: Clone,
    {
        match self.data {
            Backing::Owned(v) => v,
            Backing::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| a.as_ref().clone()),
        }
    }

    fn elem_bytes() -> usize {
        std::mem::size_of::<T>()
    }

    /// Warp-coalesced read of `len` consecutive elements starting at `start`.
    /// Charges one GLD transaction per 128-byte segment spanned.
    pub fn warp_read(&self, start: usize, len: usize) -> &[T] {
        self.stats.gld_range(start, len, Self::elem_bytes());
        &self.data.as_slice()[start..start + len]
    }

    /// Warp-coalesced write of `src` at `start`. Charges GST transactions
    /// for the spanned segments.
    pub fn warp_write(&mut self, start: usize, src: &[T]) {
        self.stats.gst_range(start, src.len(), Self::elem_bytes());
        self.as_mut_slice()[start..start + src.len()].copy_from_slice(src);
    }

    /// Warp gather of scattered elements; charges one GLD transaction per
    /// distinct 128-byte segment among the (≤ 32) indices.
    pub fn warp_gather(&self, indices: &[usize]) -> Vec<T> {
        debug_assert!(indices.len() <= crate::warp::WARP_SIZE);
        self.stats
            .gld_gather(indices.iter().copied(), Self::elem_bytes());
        let xs = self.data.as_slice();
        indices.iter().map(|&i| xs[i]).collect()
    }

    /// Single-lane read (one transaction — the degenerate gather).
    pub fn warp_read_one(&self, index: usize) -> T {
        self.stats.gld_gather([index], Self::elem_bytes());
        self.data.as_slice()[index]
    }

    /// Single-lane write (one transaction).
    pub fn warp_write_one(&mut self, index: usize, value: T) {
        self.stats.gst_scatter([index], Self::elem_bytes());
        self.as_mut_slice()[index] = value;
    }
}

fn stats_arc(gpu: &Gpu) -> &Arc<GpuStats> {
    gpu.stats_arc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    fn gpu() -> Gpu {
        Gpu::new(DeviceConfig::test_device())
    }

    #[test]
    fn from_vec_records_alloc() {
        let g = gpu();
        let v: DeviceVec<u32> = DeviceVec::from_vec(&g, vec![1, 2, 3]);
        assert_eq!(v.len(), 3);
        let snap = g.stats().snapshot();
        assert_eq!(snap.device_allocs, 1);
        assert_eq!(snap.device_alloc_bytes, 12);
    }

    #[test]
    fn warp_read_counts_segments() {
        let g = gpu();
        let v: DeviceVec<u32> = DeviceVec::from_vec(&g, (0..256).collect());
        g.reset_stats();
        let s = v.warp_read(0, 32); // exactly one 128B segment
        assert_eq!(s.len(), 32);
        assert_eq!(g.stats().snapshot().gld_transactions, 1);
        v.warp_read(16, 32); // straddles a boundary
        assert_eq!(g.stats().snapshot().gld_transactions, 3);
    }

    #[test]
    fn warp_write_counts_and_mutates() {
        let g = gpu();
        let mut v: DeviceVec<u32> = DeviceVec::zeroed(&g, 64);
        g.reset_stats();
        v.warp_write(0, &[7; 32]);
        assert_eq!(v.as_slice()[31], 7);
        assert_eq!(g.stats().snapshot().gst_transactions, 1);
    }

    #[test]
    fn gather_distinct_segments() {
        let g = gpu();
        let v: DeviceVec<u32> = DeviceVec::from_vec(&g, (0..4096).collect());
        g.reset_stats();
        // Four indices in four different 128-byte segments.
        let out = v.warp_gather(&[0, 100, 200, 300]);
        assert_eq!(out, vec![0, 100, 200, 300]);
        assert_eq!(g.stats().snapshot().gld_transactions, 4);
    }

    #[test]
    fn single_lane_ops() {
        let g = gpu();
        let mut v: DeviceVec<u32> = DeviceVec::zeroed(&g, 8);
        g.reset_stats();
        v.warp_write_one(3, 42);
        assert_eq!(v.warp_read_one(3), 42);
        let snap = g.stats().snapshot();
        assert_eq!(snap.gst_transactions, 1);
        assert_eq!(snap.gld_transactions, 1);
    }

    #[test]
    fn from_shared_charges_like_from_vec_without_copying() {
        let list = Arc::new((0..1000u32).collect::<Vec<_>>());
        let g1 = gpu();
        let shared = DeviceVec::from_shared(&g1, Arc::clone(&list));
        let g2 = gpu();
        let owned = DeviceVec::from_vec(&g2, list.as_ref().clone());
        assert_eq!(g1.stats().snapshot(), g2.stats().snapshot());
        // The shared backing is the same host allocation, not a copy.
        assert_eq!(shared.as_slice().as_ptr(), list.as_ptr());
        assert_eq!(shared.as_slice(), owned.as_slice());
        // Reads charge identically through either backing.
        g1.reset_stats();
        g2.reset_stats();
        assert_eq!(shared.warp_read_one(77), owned.warp_read_one(77));
        assert_eq!(g1.stats().snapshot(), g2.stats().snapshot());
    }

    #[test]
    fn shared_backing_promotes_on_mutation() {
        let list = Arc::new(vec![1u32, 2, 3]);
        let g = gpu();
        let mut v = DeviceVec::from_shared(&g, Arc::clone(&list));
        v.as_mut_slice()[0] = 9;
        assert_eq!(v.as_slice(), &[9, 2, 3]);
        assert_eq!(list.as_ref(), &vec![1, 2, 3], "original untouched");
        assert_eq!(v.into_vec(), vec![9, 2, 3]);
    }

    #[test]
    fn host_access_is_free() {
        let g = gpu();
        let v: DeviceVec<u32> = DeviceVec::from_vec(&g, vec![1, 2, 3]);
        g.reset_stats();
        assert_eq!(v.as_slice().iter().sum::<u32>(), 6);
        assert_eq!(g.stats().snapshot().gld_transactions, 0);
    }
}
