//! GunrockSM (Wang et al., HPDC 2016): subgraph matching on the Gunrock
//! framework — label-only filtering, plain BFS join order, two-step output.

use crate::edge_join::{BaselineFilter, EdgeJoinConfig, EdgeJoinEngine, RootHeuristic};
use gsi_gpu_sim::Gpu;

/// Build a GunrockSM engine on the given device.
pub fn engine(gpu: Gpu) -> EdgeJoinEngine {
    EdgeJoinEngine::with_gpu(config(), gpu)
}

/// GunrockSM's configuration.
pub fn config() -> EdgeJoinConfig {
    EdgeJoinConfig {
        name: "GunrockSM",
        filter: BaselineFilter::LabelOnly,
        root: RootHeuristic::FirstVertex,
        max_intermediate_rows: 5_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsi_gpu_sim::DeviceConfig;

    #[test]
    fn config_shape() {
        let c = config();
        assert_eq!(c.name, "GunrockSM");
        assert_eq!(c.filter, BaselineFilter::LabelOnly);
        assert_eq!(c.root, RootHeuristic::FirstVertex);
    }

    #[test]
    fn engine_builds() {
        let _ = engine(Gpu::new(DeviceConfig::test_device()));
    }
}
