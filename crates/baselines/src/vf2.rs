//! VF2 — the classic CPU backtracking algorithm (Cordella et al., TPAMI
//! 2004), and this repository's correctness oracle.
//!
//! Depth-first state-space search: query vertices are matched one at a time
//! in a connectivity-preserving order; a candidate data vertex is feasible
//! when labels match, it is unused, and every query edge to an
//! already-matched vertex exists in the data graph with the same label.

use crate::common::{canonicalize, EngineResult, TimeoutGuard};
use gsi_graph::{Graph, VertexId};
use std::time::{Duration, Instant};

/// A connectivity-preserving matching order: start anywhere, always extend
/// with a vertex adjacent to the matched prefix (queries are connected).
fn connectivity_order(query: &Graph) -> Vec<VertexId> {
    let n = query.n_vertices();
    let mut order = Vec::with_capacity(n);
    let mut in_order = vec![false; n];
    if n == 0 {
        return order;
    }
    order.push(0);
    in_order[0] = true;
    while order.len() < n {
        let next = (0..n as VertexId)
            .find(|&u| {
                !in_order[u as usize]
                    && query
                        .neighbors(u)
                        .iter()
                        .any(|&(w, _)| in_order[w as usize])
            })
            .expect("query must be connected");
        in_order[next as usize] = true;
        order.push(next);
    }
    order
}

struct Search<'a> {
    data: &'a Graph,
    query: &'a Graph,
    order: Vec<VertexId>,
    mapping: Vec<Option<VertexId>>,
    used: Vec<bool>,
    results: Vec<Vec<VertexId>>,
    guard: TimeoutGuard,
}

impl Search<'_> {
    fn feasible(&self, u: VertexId, v: VertexId) -> bool {
        if self.query.vlabel(u) != self.data.vlabel(v) || self.used[v as usize] {
            return false;
        }
        // Every edge from u to a matched query vertex must exist in data.
        for &(w, l) in self.query.neighbors(u) {
            if let Some(dv) = self.mapping[w as usize] {
                if !self.data.has_edge(v, dv, l) {
                    return false;
                }
            }
        }
        true
    }

    fn recurse(&mut self, depth: usize) {
        if self.guard.expired() {
            return;
        }
        if depth == self.order.len() {
            self.results.push(
                self.mapping
                    .iter()
                    .map(|m| m.expect("complete mapping"))
                    .collect(),
            );
            return;
        }
        let u = self.order[depth];
        // Candidate generation: neighbors of an already-matched neighbor
        // (connectivity order guarantees one for depth > 0).
        let anchor = self
            .query
            .neighbors(u)
            .iter()
            .find_map(|&(w, l)| self.mapping[w as usize].map(|dv| (dv, l)));
        match anchor {
            Some((dv, l)) => {
                let cands: Vec<VertexId> = self.data.neighbors_with_label(dv, l).collect();
                for v in cands {
                    if self.feasible(u, v) {
                        self.assign(u, v, depth);
                    }
                }
            }
            None => {
                debug_assert_eq!(depth, 0);
                for v in 0..self.data.n_vertices() as VertexId {
                    if self.feasible(u, v) {
                        self.assign(u, v, depth);
                    }
                }
            }
        }
    }

    fn assign(&mut self, u: VertexId, v: VertexId, depth: usize) {
        self.mapping[u as usize] = Some(v);
        self.used[v as usize] = true;
        self.recurse(depth + 1);
        self.mapping[u as usize] = None;
        self.used[v as usize] = false;
    }
}

/// Enumerate all matches of `query` in `data` with VF2-style backtracking.
pub fn run(data: &Graph, query: &Graph, timeout: Option<Duration>) -> EngineResult {
    let start = Instant::now();
    if query.n_vertices() == 0 {
        return EngineResult {
            assignments: Vec::new(),
            elapsed: start.elapsed(),
            timed_out: false,
            device: None,
        };
    }
    let mut s = Search {
        data,
        query,
        order: connectivity_order(query),
        mapping: vec![None; query.n_vertices()],
        used: vec![false; data.n_vertices()],
        results: Vec::new(),
        guard: TimeoutGuard::new(timeout),
    };
    s.recurse(0);
    let timed_out = s.guard.expired();
    EngineResult {
        assignments: canonicalize(s.results),
        elapsed: start.elapsed(),
        timed_out,
        device: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsi_graph::GraphBuilder;

    fn triangle_data() -> Graph {
        // Two labeled triangles sharing an edge.
        let mut b = GraphBuilder::new();
        let v: Vec<u32> = (0..4)
            .map(|i| b.add_vertex(if i == 3 { 1 } else { 0 }))
            .collect();
        b.add_edge(v[0], v[1], 0);
        b.add_edge(v[1], v[2], 0);
        b.add_edge(v[0], v[2], 0);
        b.add_edge(v[1], v[3], 0);
        b.add_edge(v[2], v[3], 0);
        b.build()
    }

    #[test]
    fn triangle_query_counts_automorphisms() {
        let data = triangle_data();
        let mut qb = GraphBuilder::new();
        let u: Vec<u32> = (0..3).map(|_| qb.add_vertex(0)).collect();
        qb.add_edge(u[0], u[1], 0);
        qb.add_edge(u[1], u[2], 0);
        qb.add_edge(u[0], u[2], 0);
        let query = qb.build();
        let res = run(&data, &query, None);
        // One triangle of label-0 vertices (v0,v1,v2), 3! automorphisms.
        assert_eq!(res.len(), 6);
        res.verify(&data, &query).unwrap();
    }

    #[test]
    fn edge_labels_respected() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(0);
        let v1 = b.add_vertex(1);
        let v2 = b.add_vertex(1);
        b.add_edge(v0, v1, 5);
        b.add_edge(v0, v2, 6);
        let data = b.build();
        let mut qb = GraphBuilder::new();
        let u0 = qb.add_vertex(0);
        let u1 = qb.add_vertex(1);
        qb.add_edge(u0, u1, 5);
        let query = qb.build();
        let res = run(&data, &query, None);
        assert_eq!(res.len(), 1);
        assert_eq!(res.assignments[0], vec![0, 1]);
    }

    #[test]
    fn injectivity_enforced() {
        // Path query u0-u1-u2 with all labels equal; data path v0-v1: no
        // match without reusing vertices.
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(0);
        let v1 = b.add_vertex(0);
        b.add_edge(v0, v1, 0);
        let data = b.build();
        let mut qb = GraphBuilder::new();
        let u: Vec<u32> = (0..3).map(|_| qb.add_vertex(0)).collect();
        qb.add_edge(u[0], u[1], 0);
        qb.add_edge(u[1], u[2], 0);
        let query = qb.build();
        assert!(run(&data, &query, None).is_empty());
    }

    #[test]
    fn empty_query() {
        let data = triangle_data();
        let q = GraphBuilder::new().build();
        assert!(run(&data, &q, None).is_empty());
    }
}
