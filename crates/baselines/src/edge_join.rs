//! Shared machinery of the edge-oriented GPU baselines (GpSM, GunrockSM).
//!
//! Both systems follow the routine the paper describes (§I, §VIII): filter
//! candidate *vertices*, collect candidate *edges* for each query edge, and
//! join the edge tables — writing every join result through the **two-step
//! output scheme** (Example 1): the join runs once to count, a prefix sum
//! assigns offsets, and the identical join runs again to write. Neighbor
//! access uses the traditional 3-layer CSR (full-row scans with label
//! filtering and thread underutilization), and there is no write cache, no
//! load balancing and no duplicate removal — the absences GSI's ablations
//! quantify.

use crate::common::{canonicalize, EngineResult};
use gsi_core::matches::Matches;
use gsi_core::table::MatchTable;
use gsi_gpu_sim::scan::exclusive_prefix_sum;
use gsi_gpu_sim::{kernel, DeviceBitset, Gpu};
use gsi_graph::csr::Csr;
use gsi_graph::{EdgeLabel, Graph, LabeledStore, VertexId};
use gsi_signature::filter::FilterInputs;
use gsi_signature::{filter_label_degree, filter_label_only, CandidateSet};
use std::time::{Duration, Instant};

/// Vertex-candidate filter used before edge collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineFilter {
    /// GpSM: label equality + degree lower bound.
    LabelDegree,
    /// GunrockSM: label equality only.
    LabelOnly,
}

/// How the BFS join tree is rooted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootHeuristic {
    /// GpSM: root at the vertex minimizing `|C(u)| / deg(u)`.
    MinCandidate,
    /// GunrockSM: root at query vertex 0.
    FirstVertex,
}

/// Configuration distinguishing the two baselines.
#[derive(Debug, Clone)]
pub struct EdgeJoinConfig {
    /// Engine name for reports.
    pub name: &'static str,
    /// Vertex filter.
    pub filter: BaselineFilter,
    /// Join-tree root selection.
    pub root: RootHeuristic,
    /// Abort when the intermediate table exceeds this many rows.
    pub max_intermediate_rows: usize,
}

/// Offline-built state for a data graph.
pub struct PreparedEdgeJoin {
    csr: Csr,
    filter_inputs: FilterInputs,
}

/// An edge-oriented GPU subgraph matcher.
pub struct EdgeJoinEngine {
    cfg: EdgeJoinConfig,
    gpu: Gpu,
}

/// One query edge scheduled for joining.
#[derive(Debug, Clone, Copy)]
struct ScheduledEdge {
    a: VertexId,
    b: VertexId,
    label: EdgeLabel,
    /// `true` when `b` is new to the partial match (tree edge); `false`
    /// when both endpoints are matched (non-tree edge: semi-join filter).
    extends: bool,
}

impl EdgeJoinEngine {
    /// Engine over an explicit device.
    pub fn with_gpu(cfg: EdgeJoinConfig, gpu: Gpu) -> Self {
        Self { cfg, gpu }
    }

    /// The device handle.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Build the offline CSR and filter inputs; resets counters after.
    pub fn prepare(&self, data: &Graph) -> PreparedEdgeJoin {
        let csr = Csr::build(data);
        let filter_inputs = FilterInputs::build(&self.gpu, data);
        self.gpu.reset_stats();
        PreparedEdgeJoin { csr, filter_inputs }
    }

    /// Filter candidate vertices (also used standalone for Table IV).
    pub fn filter(&self, prepared: &PreparedEdgeJoin, query: &Graph) -> Vec<CandidateSet> {
        match self.cfg.filter {
            BaselineFilter::LabelDegree => {
                filter_label_degree(&self.gpu, &prepared.filter_inputs, query)
            }
            BaselineFilter::LabelOnly => {
                filter_label_only(&self.gpu, &prepared.filter_inputs, query)
            }
        }
    }

    /// BFS edge schedule from the configured root: tree edges extend, edges
    /// closing a cycle filter as soon as both endpoints are matched.
    fn schedule(&self, query: &Graph, cands: &[CandidateSet]) -> Vec<ScheduledEdge> {
        let n = query.n_vertices();
        let root = match self.cfg.root {
            RootHeuristic::FirstVertex => 0,
            RootHeuristic::MinCandidate => (0..n as VertexId)
                .min_by(|&a, &b| {
                    let sa = cands[a as usize].len() as f64 / query.degree(a).max(1) as f64;
                    let sb = cands[b as usize].len() as f64 / query.degree(b).max(1) as f64;
                    sa.total_cmp(&sb)
                })
                .expect("non-empty query"),
        };

        let mut matched = vec![false; n];
        matched[root as usize] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        let mut edges = Vec::with_capacity(query.n_edges());
        let mut done = std::collections::HashSet::new();
        while let Some(a) = queue.pop_front() {
            for &(b, l) in query.neighbors(a) {
                let key = if a <= b { (a, b, l) } else { (b, a, l) };
                if done.contains(&key) {
                    continue;
                }
                done.insert(key);
                if matched[b as usize] {
                    edges.push(ScheduledEdge {
                        a,
                        b,
                        label: l,
                        extends: false,
                    });
                } else {
                    matched[b as usize] = true;
                    queue.push_back(b);
                    edges.push(ScheduledEdge {
                        a,
                        b,
                        label: l,
                        extends: true,
                    });
                    // Any remaining edges from b to matched vertices become
                    // non-tree filters once b is matched; they are picked up
                    // when b is dequeued.
                }
            }
        }
        debug_assert_eq!(edges.len(), query.n_edges());
        edges
    }

    /// Run the full filter + edge-join pipeline.
    pub fn run(&self, data: &Graph, prepared: &PreparedEdgeJoin, query: &Graph) -> EngineResult {
        self.run_with_timeout(data, prepared, query, None)
    }

    /// Run with a wall-clock timeout checked between edge joins.
    pub fn run_with_timeout(
        &self,
        data: &Graph,
        prepared: &PreparedEdgeJoin,
        query: &Graph,
        timeout: Option<Duration>,
    ) -> EngineResult {
        let start = Instant::now();
        debug_assert_eq!(
            data.n_vertices(),
            prepared.csr.n_vertices(),
            "prepared state belongs to a different data graph"
        );
        let snap0 = self.gpu.stats().snapshot();
        let deadline = timeout.map(|t| start + t);

        let abort = |timed_out: bool, start: Instant, snap0| EngineResult {
            assignments: Vec::new(),
            elapsed: start.elapsed(),
            timed_out,
            device: Some(self.gpu.stats().snapshot() - snap0),
        };

        if query.n_vertices() == 0 {
            return abort(false, start, snap0);
        }

        let cands = self.filter(prepared, query);
        if cands.iter().any(|c| c.is_empty()) {
            return abort(false, start, snap0);
        }

        let schedule = self.schedule(query, cands.as_slice());
        let root = if let Some(first) = schedule.first() {
            first.a
        } else {
            // Single-vertex query: candidates are the matches.
            let m = Matches {
                order: vec![0],
                table: MatchTable::from_candidates(&cands[0].list),
            };
            return EngineResult {
                assignments: canonicalize(m.canonical()),
                elapsed: start.elapsed(),
                timed_out: false,
                device: Some(self.gpu.stats().snapshot() - snap0),
            };
        };

        // Column layout of the growing table.
        let mut order: Vec<VertexId> = vec![root];
        let mut m = MatchTable::from_candidates(&cands[root as usize].list);

        for edge in &schedule {
            if let Some(d) = deadline {
                if Instant::now() > d {
                    return abort(true, start, snap0);
                }
            }
            if m.is_empty() {
                break;
            }
            if m.n_rows() > self.cfg.max_intermediate_rows {
                return abort(true, start, snap0);
            }
            let col_a = order
                .iter()
                .position(|&u| u == edge.a)
                .expect("tree parent already matched");
            if edge.extends {
                match self.extend(prepared, &m, col_a, edge.label, &cands[edge.b as usize]) {
                    Some(next) => m = next,
                    None => return abort(true, start, snap0),
                }
                order.push(edge.b);
            } else {
                let col_b = order
                    .iter()
                    .position(|&u| u == edge.b)
                    .expect("non-tree endpoint matched");
                m = self.semi_join(prepared, &m, col_a, col_b, edge.label);
            }
        }

        let matches = Matches { order, table: m };
        EngineResult {
            assignments: canonicalize(matches.canonical()),
            elapsed: start.elapsed(),
            timed_out: false,
            device: Some(self.gpu.stats().snapshot() - snap0),
        }
    }

    /// Tree-edge join: extend every row with `N(row[col_a], l) ∩ C(b)`,
    /// written through the two-step output scheme. Returns `None` when the
    /// output would exceed the intermediate-row guard.
    fn extend(
        &self,
        prepared: &PreparedEdgeJoin,
        m: &MatchTable,
        col_a: usize,
        label: EdgeLabel,
        cand_b: &CandidateSet,
    ) -> Option<MatchTable> {
        let gpu = &self.gpu;
        let bitset =
            DeviceBitset::from_members(gpu, prepared.csr.n_vertices().max(1), &cand_b.list);
        let rows: Vec<usize> = (0..m.n_rows()).collect();

        // One pass of the join work for every row; `write` controls whether
        // results are stored (step 2) or merely counted (step 1).
        let pass = |write: bool| -> Vec<Vec<VertexId>> {
            kernel::launch_map(gpu, &rows, |_wid, &r| {
                m.charge_row_read(gpu, r);
                let row = m.row(r);
                let va = row[col_a];
                let nbrs = prepared.csr.neighbors_with_label(gpu, va, label);
                let mut out = Vec::new();
                for &v in nbrs.list.iter() {
                    if row.contains(&v) {
                        continue;
                    }
                    if bitset.probe_one(v) {
                        if write {
                            // Uncoalesced per-element result store.
                            gpu.stats().gst_scatter([out.len()], 4);
                        }
                        out.push(v);
                    }
                }
                out
            })
        };

        // Step 1: count. Step 2: identical work, plus stores — unless the
        // output would blow the row guard.
        let counted = pass(false);
        let counts: Vec<u32> = counted.iter().map(|c| c.len() as u32).collect();
        let offsets = exclusive_prefix_sum(gpu, &counts);
        if *offsets.last().expect("total") as usize > self.cfg.max_intermediate_rows {
            return None;
        }
        gpu.stats()
            .record_alloc(4 * u64::from(*offsets.last().expect("total")));
        let written = pass(true);

        // Link rows into the new table.
        let n_cols = m.n_cols() + 1;
        let total = *offsets.last().unwrap() as usize;
        let mut data = Vec::with_capacity(total * n_cols);
        for (r, exts) in written.iter().enumerate() {
            let row = m.row(r);
            for &v in exts {
                gpu.stats().gst_range(data.len(), n_cols, 4);
                data.extend_from_slice(&row);
                data.push(v);
            }
        }
        Some(MatchTable::from_raw(n_cols, data))
    }

    /// Non-tree edge: keep rows where `row[col_a] –l– row[col_b]` exists,
    /// compacted through the two-step scheme.
    fn semi_join(
        &self,
        prepared: &PreparedEdgeJoin,
        m: &MatchTable,
        col_a: usize,
        col_b: usize,
        label: EdgeLabel,
    ) -> MatchTable {
        let gpu = &self.gpu;
        let rows: Vec<usize> = (0..m.n_rows()).collect();
        let pass = || -> Vec<bool> {
            kernel::launch_map(gpu, &rows, |_wid, &r| {
                m.charge_row_read(gpu, r);
                let row = m.row(r);
                let nbrs = prepared.csr.neighbors_with_label(gpu, row[col_a], label);
                nbrs.list.binary_search(&row[col_b]).is_ok()
            })
        };
        let keep = pass();
        let counts: Vec<u32> = keep.iter().map(|&k| k as u32).collect();
        let offsets = exclusive_prefix_sum(gpu, &counts);
        gpu.stats()
            .record_alloc(4 * u64::from(*offsets.last().expect("total")) * m.n_cols() as u64);
        let keep2 = pass(); // two-step: the verification runs again to write
        let mut data = Vec::new();
        for (r, &k) in keep2.iter().enumerate() {
            if k {
                gpu.stats().gst_range(data.len(), m.n_cols(), 4);
                data.extend_from_slice(&m.row(r));
            }
        }
        MatchTable::from_raw(m.n_cols(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf2;
    use gsi_gpu_sim::DeviceConfig;
    use gsi_graph::generate::{barabasi_albert, LabelModel};
    use gsi_graph::query_gen::random_walk_query;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(filter: BaselineFilter, root: RootHeuristic) -> EdgeJoinEngine {
        EdgeJoinEngine::with_gpu(
            EdgeJoinConfig {
                name: "test",
                filter,
                root,
                max_intermediate_rows: 10_000_000,
            },
            Gpu::new(DeviceConfig::test_device()),
        )
    }

    #[test]
    fn agrees_with_vf2_randomized() {
        for seed in 0..6u64 {
            let model = LabelModel::zipf(4, 3, 0.8);
            let mut rng = StdRng::seed_from_u64(seed);
            let data = barabasi_albert(150, 2, &model, &mut rng);
            let query = random_walk_query(&data, 5, &mut rng).expect("query");
            let oracle = vf2::run(&data, &query, None);
            for (filter, root) in [
                (BaselineFilter::LabelDegree, RootHeuristic::MinCandidate),
                (BaselineFilter::LabelOnly, RootHeuristic::FirstVertex),
            ] {
                let e = engine(filter, root);
                let prep = e.prepare(&data);
                let res = e.run(&data, &prep, &query);
                assert!(!res.timed_out);
                assert_eq!(res.assignments, oracle.assignments, "seed {seed}");
            }
        }
    }

    #[test]
    fn two_step_doubles_join_reads() {
        // The same query through GSI's Prealloc-Combine vs the edge join:
        // the edge join must issue roughly twice the pass reads. Verified
        // indirectly: running the pipeline counts > 0 GLD and > 0 GST.
        let model = LabelModel::zipf(3, 2, 0.5);
        let mut rng = StdRng::seed_from_u64(9);
        let data = barabasi_albert(100, 2, &model, &mut rng);
        let query = random_walk_query(&data, 4, &mut rng).expect("query");
        let e = engine(BaselineFilter::LabelDegree, RootHeuristic::MinCandidate);
        let prep = e.prepare(&data);
        let res = e.run(&data, &prep, &query);
        let dev = res.device.expect("gpu engine records stats");
        assert!(dev.gld_transactions > 0);
        assert!(dev.kernel_launches > 0);
    }

    #[test]
    fn schedule_covers_all_edges_once() {
        let model = LabelModel::uniform(3, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let data = barabasi_albert(80, 2, &model, &mut rng);
        let query = random_walk_query(&data, 6, &mut rng).expect("query");
        let e = engine(BaselineFilter::LabelOnly, RootHeuristic::FirstVertex);
        let prep = e.prepare(&data);
        let cands = e.filter(&prep, &query);
        let sched = e.schedule(&query, &cands);
        assert_eq!(sched.len(), query.n_edges());
        let tree_edges = sched.iter().filter(|s| s.extends).count();
        assert_eq!(tree_edges, query.n_vertices() - 1);
    }

    #[test]
    fn timeout_aborts() {
        let model = LabelModel::uniform(1, 1); // unlabeled ⇒ explosive
        let mut rng = StdRng::seed_from_u64(5);
        let data = barabasi_albert(400, 4, &model, &mut rng);
        let query = random_walk_query(&data, 8, &mut rng).expect("query");
        let e = engine(BaselineFilter::LabelOnly, RootHeuristic::FirstVertex);
        let prep = e.prepare(&data);
        let res = e.run_with_timeout(&data, &prep, &query, Some(Duration::from_millis(1)));
        // Either it finished very fast or it reported the timeout; both are
        // acceptable, but a timeout must come back empty.
        if res.timed_out {
            assert!(res.is_empty());
        }
    }
}
