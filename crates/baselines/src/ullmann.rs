//! Ullmann's algorithm (J. ACM 1976) — the original subgraph-isomorphism
//! backtracking procedure, cited as the root of the paper's related work.
//!
//! Maintains a candidate matrix `M[u] = {v : v may match u}` and, at each
//! depth, tries every remaining candidate of the next query vertex, running
//! the classic **refinement** step: after assigning `u → v`, every candidate
//! `v'` of every unmatched `u'` adjacent to `u` must have an edge to `v`
//! with the right label, or it is (temporarily) pruned. Simpler ordering and
//! weaker pruning than VF2 — the expected loser of the CPU lineup, kept as
//! a reference point and oracle cross-check.

use crate::common::{canonicalize, EngineResult, TimeoutGuard};
use gsi_graph::{Graph, VertexId};
use std::time::{Duration, Instant};

struct Search<'a> {
    data: &'a Graph,
    query: &'a Graph,
    order: Vec<VertexId>,
    /// Candidate lists per query vertex, rebuilt by refinement at each depth.
    candidates: Vec<Vec<VertexId>>,
    mapping: Vec<Option<VertexId>>,
    used: Vec<bool>,
    results: Vec<Vec<VertexId>>,
    guard: TimeoutGuard,
}

impl Search<'_> {
    fn recurse(&mut self, depth: usize) {
        if self.guard.expired() {
            return;
        }
        if depth == self.order.len() {
            self.results.push(
                self.mapping
                    .iter()
                    .map(|m| m.expect("complete mapping"))
                    .collect(),
            );
            return;
        }
        let u = self.order[depth];
        let pool = self.candidates[u as usize].clone();
        for v in pool {
            if self.used[v as usize] || !self.consistent(u, v) {
                continue;
            }
            // Refinement: prune candidates of unmatched neighbors of u that
            // lack the required edge to v; abandon v if any set empties.
            let saved = self.refine(u, v);
            let viable = self.query.neighbors(u).iter().all(|&(w, _)| {
                self.mapping[w as usize].is_some() || !self.candidates[w as usize].is_empty()
            });
            if viable {
                self.mapping[u as usize] = Some(v);
                self.used[v as usize] = true;
                self.recurse(depth + 1);
                self.mapping[u as usize] = None;
                self.used[v as usize] = false;
            }
            self.unrefine(saved);
        }
    }

    fn consistent(&self, u: VertexId, v: VertexId) -> bool {
        for &(w, l) in self.query.neighbors(u) {
            if let Some(dv) = self.mapping[w as usize] {
                if !self.data.has_edge(v, dv, l) {
                    return false;
                }
            }
        }
        true
    }

    /// Remove unsupported candidates from `u`'s unmatched neighbors and
    /// return an undo log of `(query vertex, removed candidates)`.
    fn refine(&mut self, u: VertexId, v: VertexId) -> Vec<(usize, Vec<VertexId>)> {
        let mut undo = Vec::new();
        for &(w, l) in self.query.neighbors(u) {
            if self.mapping[w as usize].is_some() {
                continue;
            }
            let cand = &mut self.candidates[w as usize];
            let before = cand.len();
            let mut removed = Vec::new();
            cand.retain(|&cv| {
                if cv != v && self.data.has_edge(cv, v, l) {
                    true
                } else {
                    removed.push(cv);
                    false
                }
            });
            if cand.len() != before {
                undo.push((w as usize, removed));
            }
        }
        undo
    }

    fn unrefine(&mut self, undo: Vec<(usize, Vec<VertexId>)>) {
        for (w, removed) in undo {
            self.candidates[w].extend(removed);
            self.candidates[w].sort_unstable();
        }
    }
}

/// Enumerate all matches with Ullmann-style backtracking + refinement.
pub fn run(data: &Graph, query: &Graph, timeout: Option<Duration>) -> EngineResult {
    let start = Instant::now();
    let nq = query.n_vertices();
    if nq == 0 {
        return EngineResult {
            assignments: Vec::new(),
            elapsed: start.elapsed(),
            timed_out: false,
            device: None,
        };
    }
    // Initial candidate matrix: label + degree compatibility.
    let candidates: Vec<Vec<VertexId>> = (0..nq as VertexId)
        .map(|u| {
            (0..data.n_vertices() as VertexId)
                .filter(|&v| data.vlabel(v) == query.vlabel(u) && data.degree(v) >= query.degree(u))
                .collect()
        })
        .collect();
    // Ullmann's original order: query vertices by index; we keep a
    // connectivity-preserving variant so refinement has anchors.
    let mut order = Vec::with_capacity(nq);
    let mut in_order = vec![false; nq];
    order.push(0 as VertexId);
    in_order[0] = true;
    while order.len() < nq {
        let next = (0..nq as VertexId)
            .find(|&u| {
                !in_order[u as usize]
                    && query
                        .neighbors(u)
                        .iter()
                        .any(|&(w, _)| in_order[w as usize])
            })
            .expect("connected query");
        in_order[next as usize] = true;
        order.push(next);
    }

    let mut s = Search {
        data,
        query,
        order,
        candidates,
        mapping: vec![None; nq],
        used: vec![false; data.n_vertices()],
        results: Vec::new(),
        guard: TimeoutGuard::new(timeout),
    };
    s.recurse(0);
    let timed_out = s.guard.expired();
    EngineResult {
        assignments: canonicalize(s.results),
        elapsed: start.elapsed(),
        timed_out,
        device: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf2;
    use gsi_graph::generate::{barabasi_albert, LabelModel};
    use gsi_graph::query_gen::random_walk_query;
    use gsi_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn agrees_with_vf2_on_random_workloads() {
        for seed in 30..35u64 {
            let model = LabelModel::zipf(4, 3, 0.8);
            let mut rng = StdRng::seed_from_u64(seed);
            let data = barabasi_albert(100, 2, &model, &mut rng);
            let query = random_walk_query(&data, 4, &mut rng).expect("query");
            let a = vf2::run(&data, &query, None);
            let b = run(&data, &query, None);
            assert_eq!(a.assignments, b.assignments, "seed {seed}");
            b.verify(&data, &query).unwrap();
        }
    }

    #[test]
    fn refinement_prunes_starved_branches() {
        // Star query whose leaves demand more neighbors than exist.
        let mut b = GraphBuilder::new();
        let c = b.add_vertex(0);
        let l1 = b.add_vertex(1);
        b.add_edge(c, l1, 0);
        let data = b.build();
        let mut qb = GraphBuilder::new();
        let qc = qb.add_vertex(0);
        let q1 = qb.add_vertex(1);
        let q2 = qb.add_vertex(1);
        qb.add_edge(qc, q1, 0);
        qb.add_edge(qc, q2, 0);
        let query = qb.build();
        assert!(run(&data, &query, None).is_empty());
    }

    #[test]
    fn single_edge_match() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(0);
        let v1 = b.add_vertex(1);
        b.add_edge(v0, v1, 3);
        let data = b.build();
        let mut qb = GraphBuilder::new();
        let u0 = qb.add_vertex(0);
        let u1 = qb.add_vertex(1);
        qb.add_edge(u0, u1, 3);
        let query = qb.build();
        let res = run(&data, &query, None);
        assert_eq!(res.assignments, vec![vec![0, 1]]);
    }

    #[test]
    fn empty_query_is_empty() {
        let data = GraphBuilder::new().build();
        let query = GraphBuilder::new().build();
        assert!(run(&data, &query, None).is_empty());
    }
}
