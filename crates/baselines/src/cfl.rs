//! CFL-Match-like backtracking (in the spirit of Bi et al., SIGMOD 2016).
//!
//! CFL-Match's pillars, reproduced: (i) **NLF filtering** — a candidate must
//! have, for every `(edge label, neighbor label)` pair the query vertex
//! requires, at least as many such incident edges; (ii) a **core-forest-leaf
//! decomposition** of the query — the 2-core is matched first (it is the
//! most constrained), then the forest, then degree-1 leaves, "postponing
//! Cartesian products"; (iii) candidate-set driven backtracking.

use crate::common::{canonicalize, EngineResult, TimeoutGuard};
use gsi_graph::{Graph, VertexId};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// NLF (neighbor label frequency) candidates of query vertex `u`.
fn nlf_candidates(data: &Graph, query: &Graph, u: VertexId) -> Vec<VertexId> {
    let mut need: HashMap<(u32, u32), usize> = HashMap::new();
    for &(w, l) in query.neighbors(u) {
        *need.entry((l, query.vlabel(w))).or_insert(0) += 1;
    }
    (0..data.n_vertices() as VertexId)
        .filter(|&v| {
            if data.vlabel(v) != query.vlabel(u) || data.degree(v) < query.degree(u) {
                return false;
            }
            let mut have: HashMap<(u32, u32), usize> = HashMap::new();
            for &(w, l) in data.neighbors(v) {
                *have.entry((l, data.vlabel(w))).or_insert(0) += 1;
            }
            need.iter()
                .all(|(k, &c)| have.get(k).copied().unwrap_or(0) >= c)
        })
        .collect()
}

/// Classify query vertices: 2 = core (2-core member), 1 = forest, 0 = leaf.
fn classify(query: &Graph) -> Vec<u8> {
    let n = query.n_vertices();
    // Iteratively strip degree-1 vertices to find the 2-core.
    let mut deg: Vec<usize> = (0..n as VertexId).map(|u| query.degree(u)).collect();
    let mut in_core = vec![true; n];
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n {
            if in_core[u] && deg[u] <= 1 {
                in_core[u] = false;
                changed = true;
                for &(w, _) in query.neighbors(u as VertexId) {
                    if in_core[w as usize] {
                        deg[w as usize] -= 1;
                    }
                }
            }
        }
    }
    (0..n)
        .map(|u| {
            if in_core[u] {
                2
            } else if query.degree(u as VertexId) > 1 {
                1 // forest internal vertex
            } else {
                0 // leaf
            }
        })
        .collect()
}

/// Core-forest-leaf matching order: connectivity-preserving, preferring
/// higher class, then smaller candidate count.
fn cfl_order(query: &Graph, classes: &[u8], cand_sizes: &[usize]) -> Vec<VertexId> {
    let n = query.n_vertices();
    let mut order = Vec::with_capacity(n);
    let mut in_order = vec![false; n];
    if n == 0 {
        return order;
    }
    let rank = |u: usize| (std::cmp::Reverse(classes[u]), cand_sizes[u]);
    let first = (0..n).min_by_key(|&u| rank(u)).expect("nonempty");
    order.push(first as VertexId);
    in_order[first] = true;
    while order.len() < n {
        let next = (0..n)
            .filter(|&u| {
                !in_order[u]
                    && query
                        .neighbors(u as VertexId)
                        .iter()
                        .any(|&(w, _)| in_order[w as usize])
            })
            .min_by_key(|&u| rank(u))
            .expect("connected query");
        in_order[next] = true;
        order.push(next as VertexId);
    }
    order
}

struct Search<'a> {
    data: &'a Graph,
    query: &'a Graph,
    order: Vec<VertexId>,
    cands: Vec<Vec<VertexId>>,
    mapping: Vec<Option<VertexId>>,
    used: Vec<bool>,
    results: Vec<Vec<VertexId>>,
    guard: TimeoutGuard,
}

impl Search<'_> {
    fn recurse(&mut self, depth: usize) {
        if self.guard.expired() {
            return;
        }
        if depth == self.order.len() {
            self.results.push(
                self.mapping
                    .iter()
                    .map(|m| m.expect("complete mapping"))
                    .collect(),
            );
            return;
        }
        let u = self.order[depth];
        // Intersect the candidate set with the neighborhood of one matched
        // anchor (if any) to avoid scanning the full candidate list.
        let anchor = self
            .query
            .neighbors(u)
            .iter()
            .find_map(|&(w, l)| self.mapping[w as usize].map(|dv| (dv, l)));
        let pool: Vec<VertexId> = match anchor {
            Some((dv, l)) => {
                let cand = &self.cands[u as usize];
                self.data
                    .neighbors_with_label(dv, l)
                    .filter(|v| cand.binary_search(v).is_ok())
                    .collect()
            }
            None => self.cands[u as usize].clone(),
        };
        for v in pool {
            if self.used[v as usize] {
                continue;
            }
            if !self.edges_ok(u, v) {
                continue;
            }
            self.mapping[u as usize] = Some(v);
            self.used[v as usize] = true;
            self.recurse(depth + 1);
            self.mapping[u as usize] = None;
            self.used[v as usize] = false;
        }
    }

    fn edges_ok(&self, u: VertexId, v: VertexId) -> bool {
        for &(w, l) in self.query.neighbors(u) {
            if let Some(dv) = self.mapping[w as usize] {
                if !self.data.has_edge(v, dv, l) {
                    return false;
                }
            }
        }
        true
    }
}

/// Enumerate all matches with CFL-style decomposition and NLF filtering.
pub fn run(data: &Graph, query: &Graph, timeout: Option<Duration>) -> EngineResult {
    let start = Instant::now();
    if query.n_vertices() == 0 {
        return EngineResult {
            assignments: Vec::new(),
            elapsed: start.elapsed(),
            timed_out: false,
            device: None,
        };
    }
    let cands: Vec<Vec<VertexId>> = (0..query.n_vertices() as VertexId)
        .map(|u| nlf_candidates(data, query, u))
        .collect();
    if cands.iter().any(|c| c.is_empty()) {
        return EngineResult {
            assignments: Vec::new(),
            elapsed: start.elapsed(),
            timed_out: false,
            device: None,
        };
    }
    let classes = classify(query);
    let sizes: Vec<usize> = cands.iter().map(|c| c.len()).collect();
    let mut s = Search {
        data,
        query,
        order: cfl_order(query, &classes, &sizes),
        cands,
        mapping: vec![None; query.n_vertices()],
        used: vec![false; data.n_vertices()],
        results: Vec::new(),
        guard: TimeoutGuard::new(timeout),
    };
    s.recurse(0);
    let timed_out = s.guard.expired();
    EngineResult {
        assignments: canonicalize(s.results),
        elapsed: start.elapsed(),
        timed_out,
        device: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf2;
    use gsi_graph::generate::{barabasi_albert, LabelModel};
    use gsi_graph::query_gen::random_walk_query;
    use gsi_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classify_triangle_with_tail() {
        // Triangle u0-u1-u2 plus tail u2-u3-u4 and leaf u4-u5.
        let mut b = GraphBuilder::new();
        let u: Vec<u32> = (0..6).map(|_| b.add_vertex(0)).collect();
        b.add_edge(u[0], u[1], 0);
        b.add_edge(u[1], u[2], 0);
        b.add_edge(u[0], u[2], 0);
        b.add_edge(u[2], u[3], 0);
        b.add_edge(u[3], u[4], 0);
        b.add_edge(u[4], u[5], 0);
        let q = b.build();
        let c = classify(&q);
        assert_eq!(c[0], 2);
        assert_eq!(c[1], 2);
        assert_eq!(c[2], 2);
        assert_eq!(c[3], 1); // forest internal
        assert_eq!(c[4], 1);
        assert_eq!(c[5], 0); // leaf
    }

    #[test]
    fn core_matched_first() {
        let mut b = GraphBuilder::new();
        let u: Vec<u32> = (0..4).map(|_| b.add_vertex(0)).collect();
        b.add_edge(u[0], u[1], 0);
        b.add_edge(u[1], u[2], 0);
        b.add_edge(u[0], u[2], 0);
        b.add_edge(u[2], u[3], 0);
        let q = b.build();
        let classes = classify(&q);
        let order = cfl_order(&q, &classes, &[10, 10, 10, 10]);
        // The leaf u3 must come last.
        assert_eq!(*order.last().unwrap(), 3);
    }

    #[test]
    fn agrees_with_vf2_on_random_workloads() {
        for seed in 10..15u64 {
            let model = LabelModel::zipf(4, 3, 0.8);
            let mut rng = StdRng::seed_from_u64(seed);
            let data = barabasi_albert(120, 2, &model, &mut rng);
            let query = random_walk_query(&data, 5, &mut rng).expect("query");
            let a = vf2::run(&data, &query, None);
            let b = run(&data, &query, None);
            assert_eq!(a.assignments, b.assignments, "seed {seed}");
        }
    }

    #[test]
    fn nlf_is_at_least_as_strong_as_label_degree() {
        let model = LabelModel::zipf(3, 3, 0.5);
        let mut rng = StdRng::seed_from_u64(42);
        let data = barabasi_albert(150, 3, &model, &mut rng);
        let query = random_walk_query(&data, 4, &mut rng).expect("query");
        for u in 0..query.n_vertices() as u32 {
            let nlf = nlf_candidates(&data, &query, u);
            for &v in &nlf {
                assert_eq!(data.vlabel(v), query.vlabel(u));
                assert!(data.degree(v) >= query.degree(u));
            }
        }
    }
}
