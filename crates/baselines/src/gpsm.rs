//! GpSM (Tran et al., DASFAA 2015): edge-oriented GPU subgraph matching
//! with label+degree filtering, a min-candidate BFS join tree, and the
//! two-step output scheme.

use crate::edge_join::{BaselineFilter, EdgeJoinConfig, EdgeJoinEngine, RootHeuristic};
use gsi_gpu_sim::Gpu;

/// Build a GpSM engine on the given device.
pub fn engine(gpu: Gpu) -> EdgeJoinEngine {
    EdgeJoinEngine::with_gpu(config(), gpu)
}

/// GpSM's configuration.
pub fn config() -> EdgeJoinConfig {
    EdgeJoinConfig {
        name: "GpSM",
        filter: BaselineFilter::LabelDegree,
        root: RootHeuristic::MinCandidate,
        max_intermediate_rows: 5_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsi_gpu_sim::DeviceConfig;

    #[test]
    fn config_shape() {
        let c = config();
        assert_eq!(c.name, "GpSM");
        assert_eq!(c.filter, BaselineFilter::LabelDegree);
        assert_eq!(c.root, RootHeuristic::MinCandidate);
    }

    #[test]
    fn engine_builds() {
        let _ = engine(Gpu::new(DeviceConfig::test_device()));
    }
}
