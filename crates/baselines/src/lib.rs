//! # gsi-baselines — the competitor engines of the paper's evaluation
//!
//! Everything Fig. 12 compares GSI against, implemented from scratch:
//!
//! * **CPU backtracking** — [`ullmann`] (the 1976 original with candidate
//!   refinement), [`vf2`] (the classic Cordella et al. algorithm; also this
//!   repository's correctness oracle), [`vf3`] (VF2 plus node
//!   classification, rarity-driven ordering and degree/lookahead pruning,
//!   in the spirit of Carletti et al.) and [`cfl`] (core-forest-leaf
//!   decomposition with NLF filtering, in the spirit of Bi et al.'s
//!   CFL-Match).
//! * **GPU edge-oriented join** — [`gpsm`] and [`gunrock`], both built on
//!   the shared [`edge_join`] machinery: candidate-edge collection over
//!   traditional CSR, BFS-tree join order, and the **two-step output
//!   scheme** (every join performed twice) that GSI's Prealloc-Combine
//!   replaces.
//!
//! All engines return canonicalized assignments comparable with
//! [`gsi_core::Matches::canonical`]; the integration tests assert every
//! engine agrees with VF2 on randomized workloads.

pub mod cfl;
pub mod common;
pub mod edge_join;
pub mod gpsm;
pub mod gunrock;
pub mod ullmann;
pub mod vf2;
pub mod vf3;

pub use common::EngineResult;
