//! Shared result type and helpers for baseline engines.

use gsi_gpu_sim::StatsSnapshot;
use gsi_graph::{Graph, VertexId};
use std::time::Duration;

/// Outcome of one baseline run.
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// Canonicalized assignments: one vector per match, indexed by query
    /// vertex, sorted — directly comparable with
    /// [`gsi_core::Matches::canonical`].
    pub assignments: Vec<Vec<VertexId>>,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// The run hit its timeout (assignments are partial and unusable).
    pub timed_out: bool,
    /// Device-ledger delta for GPU engines, `None` for CPU engines.
    pub device: Option<StatsSnapshot>,
}

impl EngineResult {
    /// Number of matches found.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether no matches were found.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Verify every assignment is a genuine embedding.
    pub fn verify(&self, data: &Graph, query: &Graph) -> Result<(), String> {
        for (i, a) in self.assignments.iter().enumerate() {
            let mut seen = a.clone();
            seen.sort_unstable();
            if seen.windows(2).any(|w| w[0] == w[1]) {
                return Err(format!("match {i} not injective"));
            }
            for u in 0..query.n_vertices() as VertexId {
                if query.vlabel(u) != data.vlabel(a[u as usize]) {
                    return Err(format!("match {i}: vertex label mismatch at u{u}"));
                }
            }
            for e in query.edges() {
                if !data.has_edge(a[e.u as usize], a[e.v as usize], e.label) {
                    return Err(format!("match {i}: missing edge for {e:?}"));
                }
            }
        }
        Ok(())
    }
}

/// Sort assignments into canonical order (rows ascending).
pub fn canonicalize(mut assignments: Vec<Vec<VertexId>>) -> Vec<Vec<VertexId>> {
    assignments.sort_unstable();
    assignments
}

/// Periodic timeout checker for backtracking loops: cheap enough to call
/// every expansion, only reads the clock every 4096 calls.
#[derive(Debug)]
pub struct TimeoutGuard {
    deadline: Option<std::time::Instant>,
    counter: u32,
    expired: bool,
}

impl TimeoutGuard {
    /// Guard with an optional timeout from now.
    pub fn new(timeout: Option<Duration>) -> Self {
        Self {
            deadline: timeout.map(|t| std::time::Instant::now() + t),
            counter: 0,
            expired: false,
        }
    }

    /// Returns `true` once the deadline has passed.
    pub fn expired(&mut self) -> bool {
        if self.expired {
            return true;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        self.counter = self.counter.wrapping_add(1);
        if self.counter.is_multiple_of(4096) && std::time::Instant::now() > deadline {
            self.expired = true;
        }
        self.expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_without_timeout_never_expires() {
        let mut g = TimeoutGuard::new(None);
        for _ in 0..100_000 {
            assert!(!g.expired());
        }
    }

    #[test]
    fn guard_with_zero_timeout_expires() {
        let mut g = TimeoutGuard::new(Some(Duration::from_nanos(0)));
        let mut tripped = false;
        for _ in 0..10_000 {
            if g.expired() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn canonicalize_sorts() {
        let v = canonicalize(vec![vec![3, 1], vec![1, 2]]);
        assert_eq!(v, vec![vec![1, 2], vec![3, 1]]);
    }
}
