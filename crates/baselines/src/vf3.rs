//! VF3-like backtracking (in the spirit of Carletti et al., TPAMI 2018).
//!
//! VF3 improves on VF2 with (i) *node classification* — candidates are
//! pre-partitioned by vertex label; (ii) a *static matching order* driven by
//! label rarity and degree (rarest, most-constrained query vertices first);
//! (iii) stronger *feasibility rules* — degree lower bounds and a one-step
//! lookahead on unmatched-neighbor counts. The search skeleton is shared
//! with VF2; only ordering and pruning differ (our reproduction of the
//! paper's "improvement of VF2, which leverages more pruning rules").

use crate::common::{canonicalize, EngineResult, TimeoutGuard};
use gsi_graph::{Graph, VertexId};
use std::time::{Duration, Instant};

/// Rarity- and constraint-driven matching order: pick the vertex whose
/// (label frequency in data, -degree) is minimal, then extend by
/// connectivity with the same criterion.
fn vf3_order(data: &Graph, query: &Graph) -> Vec<VertexId> {
    let n = query.n_vertices();
    let mut order = Vec::with_capacity(n);
    let mut in_order = vec![false; n];
    if n == 0 {
        return order;
    }
    let rank = |u: VertexId| {
        (
            data.vlabel_freq(query.vlabel(u)),
            usize::MAX - query.degree(u),
        )
    };
    let first = (0..n as VertexId)
        .min_by_key(|&u| rank(u))
        .expect("nonempty");
    order.push(first);
    in_order[first as usize] = true;
    while order.len() < n {
        let next = (0..n as VertexId)
            .filter(|&u| {
                !in_order[u as usize]
                    && query
                        .neighbors(u)
                        .iter()
                        .any(|&(w, _)| in_order[w as usize])
            })
            .min_by_key(|&u| rank(u))
            .expect("connected query");
        in_order[next as usize] = true;
        order.push(next);
    }
    order
}

struct Search<'a> {
    data: &'a Graph,
    query: &'a Graph,
    order: Vec<VertexId>,
    mapping: Vec<Option<VertexId>>,
    used: Vec<bool>,
    results: Vec<Vec<VertexId>>,
    guard: TimeoutGuard,
    /// Unmatched query-neighbor count per query vertex (lookahead bound).
    q_unmatched_nbrs: Vec<usize>,
}

impl Search<'_> {
    fn feasible(&self, u: VertexId, v: VertexId) -> bool {
        if self.query.vlabel(u) != self.data.vlabel(v) || self.used[v as usize] {
            return false;
        }
        // Degree rule: v must support u's degree.
        if self.data.degree(v) < self.query.degree(u) {
            return false;
        }
        // Core rule: edges into the matched region must exist.
        for &(w, l) in self.query.neighbors(u) {
            if let Some(dv) = self.mapping[w as usize] {
                if !self.data.has_edge(v, dv, l) {
                    return false;
                }
            }
        }
        // Lookahead: v needs at least as many unused neighbors as u has
        // unmatched query neighbors.
        let v_free = self
            .data
            .neighbors(v)
            .iter()
            .filter(|&&(w, _)| !self.used[w as usize])
            .count();
        if v_free < self.q_unmatched_nbrs[u as usize] {
            return false;
        }
        true
    }

    fn recurse(&mut self, depth: usize) {
        if self.guard.expired() {
            return;
        }
        if depth == self.order.len() {
            self.results.push(
                self.mapping
                    .iter()
                    .map(|m| m.expect("complete mapping"))
                    .collect(),
            );
            return;
        }
        let u = self.order[depth];
        let anchor = self
            .query
            .neighbors(u)
            .iter()
            .find_map(|&(w, l)| self.mapping[w as usize].map(|dv| (dv, l)));
        match anchor {
            Some((dv, l)) => {
                let cands: Vec<VertexId> = self.data.neighbors_with_label(dv, l).collect();
                for v in cands {
                    if self.feasible(u, v) {
                        self.assign(u, v, depth);
                    }
                }
            }
            None => {
                for v in 0..self.data.n_vertices() as VertexId {
                    if self.feasible(u, v) {
                        self.assign(u, v, depth);
                    }
                }
            }
        }
    }

    fn assign(&mut self, u: VertexId, v: VertexId, depth: usize) {
        self.mapping[u as usize] = Some(v);
        self.used[v as usize] = true;
        for &(w, _) in self.query.neighbors(u) {
            self.q_unmatched_nbrs[w as usize] -= 1;
        }
        self.recurse(depth + 1);
        for &(w, _) in self.query.neighbors(u) {
            self.q_unmatched_nbrs[w as usize] += 1;
        }
        self.mapping[u as usize] = None;
        self.used[v as usize] = false;
    }
}

/// Enumerate all matches with VF3-style ordering and pruning.
pub fn run(data: &Graph, query: &Graph, timeout: Option<Duration>) -> EngineResult {
    let start = Instant::now();
    if query.n_vertices() == 0 {
        return EngineResult {
            assignments: Vec::new(),
            elapsed: start.elapsed(),
            timed_out: false,
            device: None,
        };
    }
    let q_unmatched_nbrs = (0..query.n_vertices() as VertexId)
        .map(|u| query.degree(u))
        .collect();
    let mut s = Search {
        data,
        query,
        order: vf3_order(data, query),
        mapping: vec![None; query.n_vertices()],
        used: vec![false; data.n_vertices()],
        results: Vec::new(),
        guard: TimeoutGuard::new(timeout),
        q_unmatched_nbrs,
    };
    s.recurse(0);
    let timed_out = s.guard.expired();
    EngineResult {
        assignments: canonicalize(s.results),
        elapsed: start.elapsed(),
        timed_out,
        device: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf2;
    use gsi_graph::generate::{barabasi_albert, LabelModel};
    use gsi_graph::query_gen::random_walk_query;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn agrees_with_vf2_on_random_workloads() {
        for seed in 0..5u64 {
            let model = LabelModel::zipf(4, 3, 0.8);
            let mut rng = StdRng::seed_from_u64(seed);
            let data = barabasi_albert(120, 2, &model, &mut rng);
            let query = random_walk_query(&data, 4, &mut rng).expect("query");
            let a = vf2::run(&data, &query, None);
            let b = run(&data, &query, None);
            assert_eq!(a.assignments, b.assignments, "seed {seed}");
            b.verify(&data, &query).unwrap();
        }
    }

    #[test]
    fn rarity_order_starts_from_rare_label() {
        // Data: label 9 appears once, label 0 many times.
        let mut b = gsi_graph::GraphBuilder::new();
        let hub = b.add_vertex(9);
        let others: Vec<u32> = (0..10).map(|_| b.add_vertex(0)).collect();
        for &o in &others {
            b.add_edge(hub, o, 0);
        }
        let data = b.build();
        let mut qb = gsi_graph::GraphBuilder::new();
        let u0 = qb.add_vertex(0);
        let u1 = qb.add_vertex(9);
        qb.add_edge(u0, u1, 0);
        let query = qb.build();
        let order = vf3_order(&data, &query);
        assert_eq!(order[0], 1, "rare label 9 must be matched first");
    }

    #[test]
    fn lookahead_prunes_starved_candidates() {
        // Star query: center with 3 leaves; data center has only 2 nbrs.
        let mut b = gsi_graph::GraphBuilder::new();
        let c = b.add_vertex(1);
        let l1 = b.add_vertex(0);
        let l2 = b.add_vertex(0);
        b.add_edge(c, l1, 0);
        b.add_edge(c, l2, 0);
        let data = b.build();
        let mut qb = gsi_graph::GraphBuilder::new();
        let qc = qb.add_vertex(1);
        for _ in 0..3 {
            let l = qb.add_vertex(0);
            qb.add_edge(qc, l, 0);
        }
        let query = qb.build();
        assert!(run(&data, &query, None).is_empty());
    }
}
