//! Graph statistics — the columns of Table III.

use gsi_graph::Graph;

/// Summary statistics of a generated dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStatistics {
    /// `|V|`.
    pub n_vertices: usize,
    /// `|E|` (undirected).
    pub n_edges: usize,
    /// `|L_V|` — distinct vertex labels present.
    pub n_vertex_labels: usize,
    /// `|L_E|` — distinct edge labels present.
    pub n_edge_labels: usize,
    /// Maximum degree (Table III's "MD").
    pub max_degree: usize,
}

/// Compute Table III's statistics for a graph.
pub fn statistics(g: &Graph) -> GraphStatistics {
    GraphStatistics {
        n_vertices: g.n_vertices(),
        n_edges: g.n_edges(),
        n_vertex_labels: g.n_vertex_labels(),
        n_edge_labels: g.n_edge_labels(),
        max_degree: g.max_degree(),
    }
}

impl std::fmt::Display for GraphStatistics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} |LV|={} |LE|={} MD={}",
            self.n_vertices,
            self.n_edges,
            self.n_vertex_labels,
            self.n_edge_labels,
            self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsi_graph::GraphBuilder;

    #[test]
    fn counts_are_correct() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(5);
        let v1 = b.add_vertex(5);
        let v2 = b.add_vertex(7);
        b.add_edge(v0, v1, 1);
        b.add_edge(v1, v2, 2);
        let s = statistics(&b.build());
        assert_eq!(s.n_vertices, 3);
        assert_eq!(s.n_edges, 2);
        assert_eq!(s.n_vertex_labels, 2);
        assert_eq!(s.n_edge_labels, 2);
        assert_eq!(s.max_degree, 2);
        assert!(s.to_string().contains("|V|=3"));
    }
}
