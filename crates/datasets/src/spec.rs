//! Dataset descriptors mirroring Table III.

/// The five evaluation datasets of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Enron email network: 69 K vertices, 274 K edges, 10/100 labels,
    /// real, scale-free.
    Enron,
    /// Gowalla location-based social network: 196 K / 1.9 M, 100/100 labels,
    /// real, scale-free.
    Gowalla,
    /// road_central USA: 14 M / 16 M, 1 K/1 K labels, real, mesh-like
    /// (max degree 8).
    RoadCentral,
    /// DBpedia RDF: 22 M / 170 M, 1 K/57 K labels, real, scale-free.
    DBpedia,
    /// WatDiv synthetic RDF benchmark: 10 M / 109 M, 1 K/86 labels,
    /// scale-free.
    WatDiv,
}

impl DatasetKind {
    /// All five datasets, in the paper's table order.
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::Enron,
        DatasetKind::Gowalla,
        DatasetKind::RoadCentral,
        DatasetKind::DBpedia,
        DatasetKind::WatDiv,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Enron => "enron",
            DatasetKind::Gowalla => "gowalla",
            DatasetKind::RoadCentral => "road",
            DatasetKind::DBpedia => "DBpedia",
            DatasetKind::WatDiv => "WatDiv",
        }
    }

    /// Table III's target statistics at full scale:
    /// `(|V|, |E|, |L_V|, |L_E|, family)`.
    pub fn full_target(&self) -> (usize, usize, usize, usize, Family) {
        match self {
            DatasetKind::Enron => (69_000, 274_000, 10, 100, Family::ScaleFree),
            DatasetKind::Gowalla => (196_000, 1_900_000, 100, 100, Family::ScaleFree),
            DatasetKind::RoadCentral => (14_000_000, 16_000_000, 1_000, 1_000, Family::Mesh),
            DatasetKind::DBpedia => (22_000_000, 170_000_000, 1_000, 57_000, Family::ScaleFree),
            DatasetKind::WatDiv => (10_000_000, 109_000_000, 1_000, 86, Family::ScaleFree),
        }
    }

    /// Default scale used by the benchmark harness so the full reproduction
    /// finishes on a laptop (the small graphs run at paper size).
    pub fn default_scale(&self) -> f64 {
        match self {
            DatasetKind::Enron => 0.5,
            DatasetKind::Gowalla => 0.25,
            DatasetKind::RoadCentral => 0.02,
            DatasetKind::DBpedia => 0.004,
            DatasetKind::WatDiv => 0.008,
        }
    }
}

/// Structural family of a dataset (Table III's "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Skewed, hub-dominated degree distribution ("s").
    ScaleFree,
    /// Near-constant small degree ("m").
    Mesh,
}

/// A concrete dataset request: kind, scale and RNG seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Which dataset family to generate.
    pub kind: DatasetKind,
    /// Linear size factor; 1.0 reproduces Table III's `|V|`/`|E|`.
    pub scale: f64,
    /// Generator seed (fixed seeds make every experiment reproducible).
    pub seed: u64,
}

impl DatasetSpec {
    /// The dataset at full paper scale.
    pub fn full(kind: DatasetKind) -> Self {
        Self {
            kind,
            scale: 1.0,
            seed: 0x6510 + kind as u64,
        }
    }

    /// The dataset at the harness default scale.
    pub fn bench_default(kind: DatasetKind) -> Self {
        Self {
            scale: kind.default_scale(),
            ..Self::full(kind)
        }
    }

    /// The dataset at an explicit scale.
    pub fn scaled(kind: DatasetKind, scale: f64) -> Self {
        Self {
            scale,
            ..Self::full(kind)
        }
    }

    /// Scaled `(n_vertices, n_edges, n_vlabels, n_elabels)` targets. Label
    /// universes are capped by the vertex/edge counts at tiny scales.
    pub fn targets(&self) -> (usize, usize, usize, usize) {
        let (v, e, lv, le, _) = self.kind.full_target();
        let sv = ((v as f64 * self.scale) as usize).max(16);
        let se = ((e as f64 * self.scale) as usize).max(16);
        (sv, se, lv.min(sv), le.min(se))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = DatasetKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["enron", "gowalla", "road", "DBpedia", "WatDiv"]);
    }

    #[test]
    fn full_targets_match_table3() {
        let (v, e, lv, le, fam) = DatasetKind::DBpedia.full_target();
        assert_eq!((v, e, lv, le), (22_000_000, 170_000_000, 1_000, 57_000));
        assert_eq!(fam, Family::ScaleFree);
        let (_, _, _, _, fam) = DatasetKind::RoadCentral.full_target();
        assert_eq!(fam, Family::Mesh);
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let spec = DatasetSpec::scaled(DatasetKind::Gowalla, 0.1);
        let (v, e, lv, le) = spec.targets();
        assert_eq!(v, 19_600);
        assert_eq!(e, 190_000);
        assert_eq!(lv, 100);
        assert_eq!(le, 100);
    }

    #[test]
    fn tiny_scale_caps_labels() {
        let spec = DatasetSpec::scaled(DatasetKind::DBpedia, 0.000_001);
        let (v, _, lv, _) = spec.targets();
        assert!(lv <= v);
    }

    #[test]
    fn seeds_differ_per_dataset() {
        let a = DatasetSpec::full(DatasetKind::Enron).seed;
        let b = DatasetSpec::full(DatasetKind::WatDiv).seed;
        assert_ne!(a, b);
    }
}
