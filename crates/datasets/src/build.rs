//! Dataset construction from a [`DatasetSpec`].

use crate::spec::{DatasetSpec, Family};
use gsi_graph::generate::{mesh, powerlaw_cluster, LabelModel};
use gsi_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipf exponent for label assignment (the paper's "power-law distribution").
const LABEL_ZIPF_S: f64 = 1.0;

/// Vertex-label clustering strength: real social networks are homophilous;
/// i.i.d. labels would make the signature filter unrealistically strong and
/// joins unrealistically cheap.
const VLABEL_LOCALITY: f64 = 0.8;

/// Edge-label clustering strength: predicates correlate with endpoint types
/// but less tightly, which keeps per-vertex edge-label diversity — the cost
/// driver of the traditional CSR label scan (§IV).
const ELABEL_LOCALITY: f64 = 0.8;

/// Triad-formation probability (Holme–Kim): real social/RDF graphs are
/// clustered; plain preferential attachment has vanishing clustering.
const TRIAD_P: f64 = 0.4;

/// Generate the dataset described by `spec`.
pub fn build(spec: &DatasetSpec) -> Graph {
    let (n_v, n_e, n_lv, n_le) = spec.targets();
    let (_, _, _, _, family) = spec.kind.full_target();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let labels = LabelModel::zipf_clustered_split(
        n_lv,
        n_le,
        LABEL_ZIPF_S,
        VLABEL_LOCALITY,
        ELABEL_LOCALITY,
    );
    match family {
        Family::ScaleFree => {
            let m_per_vertex = (n_e / n_v).max(1);
            powerlaw_cluster(n_v, m_per_vertex, TRIAD_P, &labels, &mut rng)
        }
        Family::Mesh => sparse_mesh(n_v, n_e, &labels, &mut rng),
    }
}

/// A road-like network: a 2-D mesh thinned to the target edge count
/// (road_central has `|E|/|V| ≈ 1.14`, below a full grid's ≈ 2), then
/// reduced to its largest connected component's spanning structure — we
/// keep it simple: thin the grid but never below a spanning tree of each
/// row, which preserves connectivity of the overwhelming majority of
/// vertices while matching the edge budget.
fn sparse_mesh<R: Rng>(n_v: usize, n_e: usize, labels: &LabelModel, rng: &mut R) -> Graph {
    let side = (n_v as f64).sqrt().ceil() as usize;
    let rows = side;
    let cols = n_v.div_ceil(side);
    let full = mesh(rows, cols, labels, rng);
    let keep = (n_e as f64 / full.n_edges() as f64).min(1.0);
    if keep >= 1.0 {
        return full;
    }
    // Thin: keep horizontal "spine" edges always (connectivity), sample the
    // rest.
    let mut b = GraphBuilder::with_capacity(full.n_vertices(), n_e);
    for v in 0..full.n_vertices() as u32 {
        b.add_vertex(full.vlabel(v));
    }
    for e in full.edges() {
        let spine = e.v == e.u + 1; // horizontal neighbor in row-major ids
        if spine || rng.random::<f64>() < keep {
            b.add_edge(e.u, e.v, e.label);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetKind;
    use crate::stats::statistics;

    #[test]
    fn enron_standin_matches_table3_shape() {
        let g = build(&DatasetSpec::scaled(DatasetKind::Enron, 0.2));
        let s = statistics(&g);
        assert!(
            (12_000..=15_000).contains(&s.n_vertices),
            "{}",
            s.n_vertices
        );
        // E/V ratio ≈ 274/69 ≈ 4.
        let ratio = s.n_edges as f64 / s.n_vertices as f64;
        assert!((2.5..=5.0).contains(&ratio), "ratio {ratio}");
        assert!(s.n_vertex_labels <= 10);
        assert!(s.n_edge_labels <= 100);
        // Scale-free: hub degree far above average.
        assert!(s.max_degree > 20 * s.n_edges / s.n_vertices);
    }

    #[test]
    fn road_standin_is_mesh_like() {
        let g = build(&DatasetSpec::scaled(DatasetKind::RoadCentral, 0.001));
        let s = statistics(&g);
        assert!(
            s.max_degree <= 4,
            "mesh max degree is 4, got {}",
            s.max_degree
        );
        let ratio = s.n_edges as f64 / s.n_vertices as f64;
        assert!((0.9..=1.6).contains(&ratio), "road E/V ≈ 1.14, got {ratio}");
    }

    #[test]
    fn watdiv_standin_has_few_edge_labels() {
        let g = build(&DatasetSpec::scaled(DatasetKind::WatDiv, 0.002));
        let s = statistics(&g);
        assert!(s.n_edge_labels <= 86);
        assert!(s.n_vertex_labels <= 1_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::scaled(DatasetKind::Gowalla, 0.02);
        let a = build(&spec);
        let b = build(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s1 = DatasetSpec::scaled(DatasetKind::Enron, 0.05);
        let mut s2 = s1;
        s1.seed = 1;
        s2.seed = 2;
        assert_ne!(build(&s1), build(&s2));
    }
}
