//! # gsi-datasets — synthetic stand-ins for the paper's evaluation datasets
//!
//! The paper evaluates on enron, gowalla, road_central (SNAP), DBpedia and
//! WatDiv (Table III), assigning vertex/edge labels "following the power-law
//! distribution" since the raw graphs are unlabeled (except RDF predicates).
//! Downloading those corpora is not possible here, so this crate generates
//! structural stand-ins matched to Table III's statistics: the same graph
//! family (scale-free vs mesh), the same `|V|`, `|E|`, `|L_V|`, `|L_E|`
//! targets, and Zipf-distributed labels — everything the paper's
//! experimental effects depend on.
//!
//! A `scale` knob shrinks the graphs proportionally (`scale = 1.0` is the
//! paper's size); the benchmark harness defaults the large graphs to scaled
//! sizes so a full reproduction run finishes on a laptop.

pub mod build;
pub mod spec;
pub mod stats;

pub use build::build;
pub use spec::{DatasetKind, DatasetSpec};
pub use stats::{statistics, GraphStatistics};
