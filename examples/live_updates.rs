//! Live graph updates under serving traffic.
//!
//! A social graph serves pattern queries while edges keep arriving:
//! `GsiService::update_graph` applies each mutation batch through the
//! incremental re-prepare path (PCSR label-layer splices, touched-vertex
//! signature refresh) and publishes it as a new *epoch*. Queries in flight
//! finish against the epoch they pinned at submit; new queries see the new
//! epoch; the per-epoch serving stats show exactly which graph state every
//! query ran against.
//!
//! Run with: `cargo run --release --example live_updates`

use gsi::prelude::*;
use gsi::service::{QueryTicket, UpdateBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Vertex labels: 0 = person, 1 = page. Edge labels: 0 = follows, 1 = likes.
fn seed_graph(n_people: usize, n_pages: usize, rng: &mut StdRng) -> Graph {
    let mut b = GraphBuilder::new();
    let people: Vec<u32> = (0..n_people).map(|_| b.add_vertex(0)).collect();
    let pages: Vec<u32> = (0..n_pages).map(|_| b.add_vertex(1)).collect();
    for (i, &p) in people.iter().enumerate() {
        // Sparse follow ring plus random likes.
        b.add_edge(p, people[(i + 1) % n_people], 0);
        for _ in 0..2 {
            b.add_edge(p, pages[rng.random_range(0..n_pages)], 1);
        }
    }
    b.build()
}

/// Pattern: two people who follow each other's follow-neighbor and like a
/// common page — a "co-fan" triangle.
fn co_fan_query() -> Graph {
    let mut qb = GraphBuilder::new();
    let a = qb.add_vertex(0);
    let b = qb.add_vertex(0);
    let page = qb.add_vertex(1);
    qb.add_edge(a, b, 0);
    qb.add_edge(a, page, 1);
    qb.add_edge(b, page, 1);
    qb.build()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let service = GsiService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let graph = seed_graph(300, 40, &mut rng);
    let n = graph.n_vertices() as u32;
    let epoch0 = service.register("social", graph).entry;
    println!(
        "registered 'social' at epoch {} ({} vertices)",
        epoch0.epoch(),
        epoch0.graph().n_vertices()
    );

    // Serve rounds of queries while mutation batches land in between.
    let query = co_fan_query();
    let mut tickets: Vec<(u64, QueryTicket)> = Vec::new();
    let mut current_epoch = epoch0.epoch();
    for round in 0..6 {
        // A burst of traffic against whatever epoch is current.
        for _ in 0..8 {
            let t = service
                .submit(QueryRequest::new("social", query.clone()))
                .expect("admitted");
            tickets.push((current_epoch, t));
        }

        // A dozen new likes arrive: one multi-op batch, published as the
        // next epoch.
        let cur = service.catalog().get("social").expect("registered");
        let mut batch = UpdateBatch::new();
        let mut pending = std::collections::BTreeSet::new();
        for _ in 0..12 {
            for _ in 0..8 {
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                let key = (u.min(v), u.max(v));
                if u != v && !cur.graph().has_edge(u, v, 1) && pending.insert(key) {
                    batch.insert_edge(u, v, 1);
                    break;
                }
            }
        }
        match service.update_graph("social", &batch) {
            Ok(update) => {
                current_epoch = update.entry.epoch();
                let store = update.report.store.as_ref().expect("pcsr storage");
                println!(
                    "round {round}: epoch {} -> {} ({} layers spliced, {} rebuilt, {:?} signatures refreshed)",
                    update.displaced.epoch(),
                    current_epoch,
                    store.spliced(),
                    store.rebuilt(),
                    update.report.signatures_refreshed,
                );
            }
            Err(e) => println!("round {round}: update skipped ({e})"),
        }
    }

    // Every query completed against the epoch it pinned at submit.
    let mut mismatches = 0;
    for (submitted_epoch, t) in tickets {
        let outcome = t.wait().result.expect("query ran");
        if outcome.epoch != submitted_epoch {
            mismatches += 1;
        }
    }
    assert_eq!(mismatches, 0, "epoch pinning is exact");

    let stats = service.stats();
    println!("\n{stats}");
    println!("\nper-epoch attribution:");
    for (epoch, e) in &stats.per_epoch {
        println!(
            "  epoch {epoch}: {} queries, {} matches, {} timeouts",
            e.completed, e.matches, e.engine_timeouts
        );
    }
    service.shutdown();
}
