//! Knowledge-graph search: SPARQL-style basic graph patterns over an
//! RDF-like labeled graph — the paper's motivating application ("search
//! over a knowledge graph", gStore-style).
//!
//! Edge labels play the role of RDF predicates; a query is a basic graph
//! pattern whose variables are the query vertices. Compares all storage
//! structures (CSR / BR / CR / PCSR) on the same pattern, reproducing the
//! Table II trade-offs on live queries.
//!
//! ```text
//! cargo run --release --example knowledge_graph
//! ```

use gsi::datasets::{build, statistics, DatasetKind, DatasetSpec};
use gsi::graph::query_gen::random_walk_query;
use gsi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // WatDiv-like RDF stand-in: scale-free, 86 predicates.
    let spec = DatasetSpec::scaled(DatasetKind::WatDiv, 0.003);
    let data = build(&spec);
    println!("knowledge graph: {}", statistics(&data));

    // A SPARQL-like star-join pattern extracted from the graph itself so it
    // is guaranteed satisfiable.
    let mut rng = StdRng::seed_from_u64(42);
    let query = random_walk_query(&data, 5, &mut rng).expect("pattern");
    println!(
        "pattern: {} variables, {} triple patterns",
        query.n_vertices(),
        query.n_edges()
    );

    println!("\nstorage structure comparison (same query, same device):");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}",
        "structure", "matches", "time", "GLD", "space(MB)"
    );
    for storage in [
        StorageKind::Csr,
        StorageKind::Basic,
        StorageKind::Compressed,
        StorageKind::Pcsr,
    ] {
        let cfg = GsiConfig {
            storage,
            ..GsiConfig::gsi_opt()
        };
        let engine = GsiEngine::new(cfg);
        let prepared = engine.prepare(&data);
        let space_mb = prepared.store().space_bytes() as f64 / (1024.0 * 1024.0);
        let out = engine.query(&data, &prepared, &query).expect("plans");
        out.matches.verify(&data, &query).expect("valid");
        println!(
            "{:<12} {:>10} {:>12.2?} {:>12} {:>10.2}",
            storage.to_string(),
            out.matches.len(),
            out.stats.total_time,
            out.stats.gld(),
            space_mb
        );
    }

    println!(
        "\nPCSR locates N(v,l) in one 128B transaction per probe; CSR scans\n\
         whole rows; CR binary-searches; BR pays |L_E|x|V| offsets. PCSR\n\
         trades space (128B per vertex per partition it appears in) for\n\
         O(1) lookups — and only one partition is GPU-resident at a time\n\
         (the paper's Table II trade-offs, measured live)."
    );
}
