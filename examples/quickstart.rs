//! Quickstart: build a labeled graph, run a pattern query, inspect matches
//! and GPU metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gsi::prelude::*;

fn main() {
    // --- data graph: a tiny collaboration network --------------------
    // Vertex labels: 0 = Person, 1 = Paper, 2 = Venue.
    // Edge labels:   0 = authored, 1 = cites, 2 = published_at.
    let mut b = GraphBuilder::new();
    let people: Vec<u32> = (0..4).map(|_| b.add_vertex(0)).collect();
    let papers: Vec<u32> = (0..5).map(|_| b.add_vertex(1)).collect();
    let venue = b.add_vertex(2);

    b.add_edge(people[0], papers[0], 0);
    b.add_edge(people[0], papers[1], 0);
    b.add_edge(people[1], papers[1], 0);
    b.add_edge(people[1], papers[2], 0);
    b.add_edge(people[2], papers[2], 0);
    b.add_edge(people[2], papers[3], 0);
    b.add_edge(people[3], papers[4], 0);
    b.add_edge(papers[1], papers[0], 1);
    b.add_edge(papers[2], papers[0], 1);
    b.add_edge(papers[3], papers[2], 1);
    for &p in &papers {
        b.add_edge(p, venue, 2);
    }
    let data = b.build();
    println!(
        "data graph: {} vertices, {} edges, {} vertex labels, {} edge labels",
        data.n_vertices(),
        data.n_edges(),
        data.n_vertex_labels(),
        data.n_edge_labels()
    );

    // --- query: co-authorship through a shared paper ------------------
    // Person –authored– Paper –authored– Person (two distinct people).
    let mut qb = GraphBuilder::new();
    let a1 = qb.add_vertex(0);
    let paper = qb.add_vertex(1);
    let a2 = qb.add_vertex(0);
    qb.add_edge(a1, paper, 0);
    qb.add_edge(a2, paper, 0);
    let query = qb.build();

    // --- run GSI -------------------------------------------------------
    let engine = GsiEngine::new(GsiConfig::gsi_opt());
    let prepared = engine.prepare(&data);
    let out = engine.query(&data, &prepared, &query).expect("plans");

    println!("\nmatches: {}", out.matches.len());
    for i in 0..out.matches.len() {
        let a = out.matches.assignment(i);
        println!(
            "  author v{} and author v{} co-wrote paper v{}",
            a[0], a[2], a[1]
        );
    }
    out.matches
        .verify(&data, &query)
        .expect("every reported match is a valid embedding");

    // --- the metrics the paper reports ---------------------------------
    let s = &out.stats;
    println!("\nGPU-simulator metrics:");
    println!("  GLD transactions : {}", s.gld());
    println!("  GST transactions : {}", s.gst());
    println!("  kernel launches  : {}", s.kernels());
    println!("  min |C(u)|       : {}", s.min_candidate);
    println!("  total time       : {:?}", s.total_time);
}
