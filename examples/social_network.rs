//! Social-network analysis: find structural patterns in a scale-free
//! network — the workload class the paper's introduction motivates.
//!
//! Generates a Gowalla-like labeled social network, then searches for
//! random-walk-extracted motifs of growing size, comparing GSI with and
//! without the §VI optimizations.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use gsi::datasets::{build, statistics, DatasetKind, DatasetSpec};
use gsi::graph::query_gen::random_walk_query_with_edges;
use gsi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_pattern(name: &str, data: &Graph, query: &Graph) {
    println!("\n=== pattern: {name} ===");
    println!(
        "    |V(Q)|={} |E(Q)|={}",
        query.n_vertices(),
        query.n_edges()
    );
    for (label, cfg) in [("GSI", GsiConfig::gsi()), ("GSI-opt", GsiConfig::gsi_opt())] {
        let engine = GsiEngine::new(cfg);
        let prepared = engine.prepare(data);
        let out = engine.query(data, &prepared, query).expect("plans");
        out.matches.verify(data, query).expect("valid embeddings");
        println!(
            "  {label:8} matches={:<8} time={:>10.2?} GLD={:<10} GST={:<8} kernels={}",
            out.matches.len(),
            out.stats.total_time,
            out.stats.gld(),
            out.stats.gst(),
            out.stats.kernels(),
        );
    }
}

fn main() {
    // A small Gowalla-like stand-in (scale-free, 100/100 labels).
    let spec = DatasetSpec::scaled(DatasetKind::Gowalla, 0.02);
    let data = build(&spec);
    println!("social network: {}", statistics(&data));

    let mut rng = StdRng::seed_from_u64(7);

    // Triad: friendship triangle or open wedge, depending on the region.
    let triangle = random_walk_query_with_edges(&data, 3, 3, &mut rng)
        .or_else(|| random_walk_query_with_edges(&data, 3, 2, &mut rng))
        .expect("walk query");
    run_pattern("closed/open triad", &data, &triangle);

    // Broker: a 4-vertex connector motif.
    let broker = random_walk_query_with_edges(&data, 4, 4, &mut rng)
        .or_else(|| random_walk_query_with_edges(&data, 4, 3, &mut rng))
        .expect("walk query");
    run_pattern("4-vertex broker motif", &data, &broker);

    // Community seed: the paper's default 12-vertex query in miniature.
    let community = random_walk_query_with_edges(&data, 6, 7, &mut rng)
        .or_else(|| random_walk_query_with_edges(&data, 6, 5, &mut rng))
        .expect("walk query");
    run_pattern("6-vertex community seed", &data, &community);
}
