//! Chemical-compound substructure search — the paper's other motivating
//! application ("chemical compound search", gIndex-style).
//!
//! Molecules are small labeled graphs: vertex labels are element types,
//! edge labels are bond types. A substructure query asks which molecules of
//! a corpus contain a functional group. We embed the corpus as one big
//! disconnected data graph (each molecule a component) and let GSI find all
//! embeddings, then group matches by molecule.
//!
//! ```text
//! cargo run --release --example chemical_search
//! ```

use gsi::prelude::*;

// Element labels.
const C: u32 = 0;
const O: u32 = 1;
const N: u32 = 2;
// Bond labels.
const SINGLE: u32 = 0;
const DOUBLE: u32 = 1;

/// Append a ring of `n` carbons (benzene-like when n = 6); returns ids.
fn add_ring(b: &mut GraphBuilder, n: usize) -> Vec<u32> {
    let atoms: Vec<u32> = (0..n).map(|_| b.add_vertex(C)).collect();
    for i in 0..n {
        let bond = if i % 2 == 0 { DOUBLE } else { SINGLE };
        b.add_edge(atoms[i], atoms[(i + 1) % n], bond);
    }
    atoms
}

/// A carboxylic-acid group (-C(=O)O) attached to `anchor`.
fn add_carboxyl(b: &mut GraphBuilder, anchor: u32) {
    let c = b.add_vertex(C);
    let o1 = b.add_vertex(O);
    let o2 = b.add_vertex(O);
    b.add_edge(anchor, c, SINGLE);
    b.add_edge(c, o1, DOUBLE);
    b.add_edge(c, o2, SINGLE);
}

/// An amine group (-N) attached to `anchor`.
fn add_amine(b: &mut GraphBuilder, anchor: u32) {
    let n = b.add_vertex(N);
    b.add_edge(anchor, n, SINGLE);
}

fn main() {
    // --- corpus: a few molecules, each its own component ---------------
    let mut b = GraphBuilder::new();
    let mut molecule_of = Vec::new(); // first vertex id → molecule name
    let mut starts = Vec::new();

    // Benzoic acid: benzene ring + carboxyl.
    starts.push(b.n_vertices() as u32);
    molecule_of.push("benzoic acid");
    let ring = add_ring(&mut b, 6);
    add_carboxyl(&mut b, ring[0]);

    // Aniline: benzene ring + amine.
    starts.push(b.n_vertices() as u32);
    molecule_of.push("aniline");
    let ring = add_ring(&mut b, 6);
    add_amine(&mut b, ring[0]);

    // 4-aminobenzoic acid: ring + carboxyl + amine (para).
    starts.push(b.n_vertices() as u32);
    molecule_of.push("4-aminobenzoic acid");
    let ring = add_ring(&mut b, 6);
    add_carboxyl(&mut b, ring[0]);
    add_amine(&mut b, ring[3]);

    // Cyclopentane: plain 5-ring, no functional group.
    starts.push(b.n_vertices() as u32);
    molecule_of.push("cyclopentane");
    let atoms: Vec<u32> = (0..5).map(|_| b.add_vertex(C)).collect();
    for i in 0..5 {
        b.add_edge(atoms[i], atoms[(i + 1) % 5], SINGLE);
    }

    let corpus = b.build();
    println!(
        "corpus: {} molecules, {} atoms, {} bonds",
        molecule_of.len(),
        corpus.n_vertices(),
        corpus.n_edges()
    );

    // --- substructure query: the carboxyl group -----------------------
    // C with a double-bonded O and a single-bonded O.
    let mut qb = GraphBuilder::new();
    let qc = qb.add_vertex(C);
    let qo1 = qb.add_vertex(O);
    let qo2 = qb.add_vertex(O);
    qb.add_edge(qc, qo1, DOUBLE);
    qb.add_edge(qc, qo2, SINGLE);
    let carboxyl = qb.build();

    // GSI assumes connected queries; the carboxyl group is connected.
    let engine = GsiEngine::new(GsiConfig::gsi_opt());
    let prepared = engine.prepare(&corpus);
    let out = engine.query(&corpus, &prepared, &carboxyl).expect("plans");
    out.matches.verify(&corpus, &carboxyl).expect("valid");

    // Group matches by containing molecule.
    let molecule_idx = |v: u32| -> usize {
        starts
            .iter()
            .rposition(|&s| s <= v)
            .expect("vertex belongs to a molecule")
    };
    let mut hits: Vec<&str> = (0..out.matches.len())
        .map(|i| molecule_of[molecule_idx(out.matches.assignment(i)[0])])
        .collect();
    hits.sort_unstable();
    hits.dedup();

    println!("\nmolecules containing a carboxyl group:");
    for h in &hits {
        println!("  - {h}");
    }
    assert_eq!(hits, vec!["4-aminobenzoic acid", "benzoic acid"]);
    println!(
        "\n({} embeddings total; GLD={}, time={:?})",
        out.matches.len(),
        out.stats.gld(),
        out.stats.total_time
    );
}
