//! The serving loop: `gsi-service` answering a mixed query stream against
//! two registered data graphs with 32 queries in flight.
//!
//! Demonstrates the full subsystem — graph catalog, bounded-queue
//! scheduler with worker threads, plan cache keyed by canonical query
//! hashes, and aggregated service statistics — and cross-checks every
//! answer against single-threaded serial execution.
//!
//! ```text
//! cargo run --release --example server_loop
//! ```

use gsi::datasets::{build, statistics, DatasetKind, DatasetSpec};
use gsi::engine::PreparedData;
use gsi::graph::query_gen::random_walk_query;
use gsi::prelude::*;
use gsi::service::QueryTicket;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::time::Duration;

/// How many queries the client keeps in flight at once.
const IN_FLIGHT: usize = 32;
/// Distinct patterns per graph; each is submitted `REPEATS` times, so the
/// plan cache sees every pattern again.
const PATTERNS_PER_GRAPH: usize = 12;
const REPEATS: usize = 4;

fn main() {
    // ---- catalog: two Table III stand-ins --------------------------------
    let graphs = vec![
        (
            "enron",
            build(&DatasetSpec::scaled(DatasetKind::Enron, 0.02)),
        ),
        (
            "gowalla",
            build(&DatasetSpec::scaled(DatasetKind::Gowalla, 0.008)),
        ),
    ];
    for (name, g) in &graphs {
        println!("graph '{name}': {}", statistics(g));
    }

    // ---- mixed workload: recurring random-walk patterns ------------------
    let mut rng = StdRng::seed_from_u64(42);
    let mut workload: Vec<(&str, Graph)> = Vec::new();
    for (name, g) in &graphs {
        let mut made = 0;
        while made < PATTERNS_PER_GRAPH {
            let size = 3 + made % 4; // mixed sizes: 3–6 vertices
            if let Some(q) = random_walk_query(g, size, &mut rng) {
                workload.push((name, q));
                made += 1;
            }
        }
    }
    // Interleave repeats so the two graphs' patterns mix in the queue.
    let stream: Vec<(&str, Graph)> = (0..REPEATS)
        .flat_map(|_| workload.iter().cloned())
        .collect();
    println!(
        "\nworkload: {} queries ({} patterns x {} repeats) over {} graphs\n",
        stream.len(),
        workload.len(),
        REPEATS,
        graphs.len()
    );

    // ---- serial ground truth ---------------------------------------------
    let engine = GsiEngine::new(GsiConfig::gsi_opt());
    let prepared: Vec<PreparedData> = graphs.iter().map(|(_, g)| engine.prepare(g)).collect();
    let serial_counts: Vec<usize> = stream
        .iter()
        .map(|(name, q)| {
            let i = graphs.iter().position(|(n, _)| n == name).unwrap();
            engine
                .query(&graphs[i].1, &prepared[i], q)
                .expect("plans")
                .matches
                .len()
        })
        .collect();

    // ---- the service -----------------------------------------------------
    let service = GsiService::new(ServiceConfig {
        workers: 4,
        queue_capacity: 2 * IN_FLIGHT,
        default_deadline: Some(Duration::from_secs(30)),
        ..ServiceConfig::default()
    });
    for (name, g) in &graphs {
        service.register(name, g.clone());
    }

    // Sliding window: keep up to IN_FLIGHT tickets outstanding.
    let mut in_flight: VecDeque<(usize, QueryTicket)> = VecDeque::new();
    let mut service_counts = vec![0usize; stream.len()];
    let mut cache_hits_seen = 0usize;
    let drain_one = |in_flight: &mut VecDeque<(usize, QueryTicket)>,
                     counts: &mut Vec<usize>,
                     hits: &mut usize| {
        let (idx, ticket) = in_flight.pop_front().expect("something in flight");
        let resp = ticket.wait();
        if let Ok(outcome) = &resp.result {
            *hits += outcome.plan_cache_hit as usize;
        }
        counts[idx] = resp.match_count();
    };
    for (i, (name, q)) in stream.iter().enumerate() {
        while in_flight.len() >= IN_FLIGHT {
            drain_one(&mut in_flight, &mut service_counts, &mut cache_hits_seen);
        }
        match service.submit(QueryRequest::new(*name, q.clone())) {
            Ok(t) => in_flight.push_back((i, t)),
            Err(SubmitError::QueueFull { .. }) => {
                // Shed load by draining one response, then retry.
                drain_one(&mut in_flight, &mut service_counts, &mut cache_hits_seen);
                let t = service
                    .submit(QueryRequest::new(*name, q.clone()))
                    .expect("room after draining");
                in_flight.push_back((i, t));
            }
            Err(e) => panic!("submit failed: {e}"),
        }
    }
    while !in_flight.is_empty() {
        drain_one(&mut in_flight, &mut service_counts, &mut cache_hits_seen);
    }

    // ---- verification + report -------------------------------------------
    let identical = service_counts == serial_counts;
    let total_matches: usize = service_counts.iter().sum();
    println!("=== verification ===");
    println!(
        "match counts identical to serial execution: {identical} \
         ({total_matches} total matches)"
    );
    assert!(identical, "service must reproduce serial results exactly");
    assert!(cache_hits_seen > 0, "repeated patterns must hit the cache");

    println!("\n=== service stats ===");
    println!("{}", service.stats());
    service.shutdown();
}
