//! Offline stand-in for `parking_lot`: no-poison wrappers over `std::sync`.
//!
//! Keeps `parking_lot`'s call-site API (`lock()` returns the guard directly,
//! a poisoned mutex propagates the original panic instead of returning a
//! `Result`). Fairness and timed-lock APIs are not provided.

use std::fmt;
use std::sync::{self, WaitTimeoutResult};
use std::time::Duration;

/// A mutual-exclusion primitive; `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock; methods never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Block until notified; the guard is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(&mut guard.0, |g| {
            self.0.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Block until notified or `timeout` elapses. Returns the std
    /// [`WaitTimeoutResult`] (query `timed_out()`).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut result = None;
        replace_guard(&mut guard.0, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            result = Some(r);
            g
        });
        result.expect("wait_timeout always yields a result")
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Run `f` on the owned std guard, putting its returned guard back in place.
/// Std's condvar consumes and returns guards; parking_lot's borrows them.
fn replace_guard<'a, T: ?Sized>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is exclusively borrowed; the value read out is either
    // moved through `f` and written back, or—if `f` panics—`abort` prevents
    // observing the logically-duplicated guard.
    unsafe {
        let guard = std::ptr::read(slot);
        let next = {
            struct Bomb;
            impl Drop for Bomb {
                fn drop(&mut self) {
                    std::process::abort();
                }
            }
            let bomb = Bomb;
            let next = f(guard);
            std::mem::forget(bomb);
            next
        };
        std::ptr::write(slot, next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_contention() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        h.join().unwrap();
        assert!(*g);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
