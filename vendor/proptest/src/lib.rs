//! Offline stand-in for `proptest`: random property testing without
//! shrinking.
//!
//! Supports the call-site surface this workspace uses — the [`proptest!`]
//! macro (with `#![proptest_config(..)]`), range / tuple / collection
//! strategies, [`Just`], [`any`], `prop_map` / `prop_flat_map`,
//! [`prop_oneof!`], and the `prop_assert*` macros. Failing cases are
//! reported with their case index and seed; there is no shrinking, so the
//! reported inputs are the raw random ones.

use rand::rngs::StdRng;
use rand::Rng as _;

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy};

/// Generation source handed to strategies (a seeded deterministic PRNG).
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded generator; each test case gets a distinct, reproducible seed.
    pub fn new(seed: u64) -> Self {
        use rand::SeedableRng;
        Self(StdRng::seed_from_u64(seed))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.random_range(0..n)
    }
}

/// A failed property: carries the assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from any displayable message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (`cases` = number of random inputs per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy of `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! arbitrary_from_bits {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::FnStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::FnStrategy($conv)
            }
        }
    )*};
}

arbitrary_from_bits! {
    bool => |rng: &mut TestRng| rng.next_u64() & 1 == 1,
    u8 => |rng: &mut TestRng| rng.next_u64() as u8,
    u16 => |rng: &mut TestRng| rng.next_u64() as u16,
    u32 => |rng: &mut TestRng| rng.next_u64() as u32,
    u64 => |rng: &mut TestRng| rng.next_u64(),
    usize => |rng: &mut TestRng| rng.next_u64() as usize,
}

/// The glob import every proptest file starts with.
pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Run one property over `cases` random inputs. Used by [`proptest!`];
/// reports the case index and seed on failure.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for i in 0..config.cases {
        // Distinct reproducible seed per (property, case).
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash = (hash ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        let seed = hash ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        if let Err(e) = case(&mut rng) {
            panic!("property '{name}' failed at case {i} (seed {seed:#x}): {e}");
        }
    }
}

/// Subset of the upstream `proptest!` macro: an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                $body
                Ok(())
            });
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that returns a [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that returns a [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// `assert_ne!` that returns a [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in 3usize..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((3..=5).contains(&y));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u32..100, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn exact_size_vec(v in crate::collection::vec(0u32..10, 5)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn btree_set_bounds(s in crate::collection::btree_set(0u32..50, 0..20)) {
            prop_assert!(s.len() < 20);
        }

        #[test]
        fn maps_compose(x in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0 && x < 20);
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..10).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u32..100, n))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn oneof_picks_all(x in prop_oneof![Just(1u32), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn any_bool_works(b in any::<bool>()) {
            prop_assert_eq!(b as u8 & !1, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(3), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
