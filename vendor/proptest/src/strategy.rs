//! Value-generation strategies (no shrinking).

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can generate random values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy from a plain generation function (used by `any`).
pub struct FnStrategy<T>(pub fn(&mut TestRng) -> T);

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-typed strategies (built by `prop_oneof!`).
pub struct OneOf<S>(Vec<S>);

impl<S: Strategy> OneOf<S> {
    /// Choice over a non-empty list.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self(options)
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + rng.below((end - start) as u64 + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
