//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Collection sizes: either an exact count or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `BTreeSet`s of values from `element`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `BTreeSet` built from up to `size` draws (duplicates collapse, so the
/// final set can be smaller — same semantics as upstream proptest).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
