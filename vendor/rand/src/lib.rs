//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides exactly what this workspace uses: the [`Rng`] trait with
//! `random`, `random_range` and `random_bool`, the [`SeedableRng`] trait
//! with `seed_from_u64`, and [`rngs::StdRng`] — a xoshiro256++ generator
//! seeded through SplitMix64. Deterministic for a given seed, but *not*
//! stream-compatible with upstream `rand`'s ChaCha12-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from their full value domain
/// (the shim's equivalent of sampling from `Standard`/`StandardUniform`).
pub trait Standard: Sized {
    /// Build a value from a uniformly random 64-bit word.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, like upstream `rand`.
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for usize {
    fn from_bits(bits: u64) -> Self {
        bits as usize
    }
}

/// A range a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value using the supplied 64-bit word source.
    fn sample(self, word: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, word: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (word() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, word: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-domain inclusive range of a 64-bit type.
                    return start + word() as $t;
                }
                start + (word() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, word: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_bits_standard(word()) * (self.end - self.start)
    }
}

trait F64Bits {
    fn from_bits_standard(bits: u64) -> f64;
}

impl F64Bits for f64 {
    fn from_bits_standard(bits: u64) -> f64 {
        <f64 as Standard>::from_bits(bits)
    }
}

/// The user-facing random-value interface (the `rand` 0.9 method names).
pub trait Rng {
    /// The raw 64-bit word source all sampling is built on.
    fn next_u64(&mut self) -> u64;

    /// Sample a value uniformly from the type's standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Sample uniformly from a range. Panics on empty ranges.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut word = || self.next_u64();
        range.sample(&mut word)
    }

    /// Return `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// state-initialized with SplitMix64 (the construction the xoshiro
    /// authors recommend).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(5u32..=7);
            assert!((5..=7).contains(&y));
        }
    }

    #[test]
    fn range_hits_all_values() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }
}
