//! Offline stand-in for `criterion`: keeps the macro and builder call-site
//! API, times each benchmark for `sample_size` iterations, and prints the
//! mean wall time per iteration. No statistics, plots, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` the bench binary is invoked with `--test`:
        // run each benchmark exactly once, as real criterion does.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.iterations(), f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            iterations: self.iterations(),
            _parent: self,
        }
    }

    fn iterations(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size.max(1)
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iterations: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput (recorded, printed alongside).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elements"),
            Throughput::Bytes(n) => (n, "bytes"),
        };
        println!("{}: throughput {} {}/iter", self.name, n, unit);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.iterations, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.0), self.iterations, |b| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Work volume per iteration, for throughput lines.
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, iterations: usize, mut f: F) {
    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.checked_div(iterations as u32).unwrap_or_default();
    println!("bench {id}: {mean:?}/iter over {iterations} iters");
}

/// Subset of criterion's `criterion_group!`: the `name/config/targets` form
/// plus the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point generating `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &3, |b, &x| {
            b.iter(|| x * 2)
        });
        g.bench_function("inner", |b| b.iter(|| ()));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
