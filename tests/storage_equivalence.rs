//! Property-based tests: every storage structure answers `N(v, l)` exactly
//! like the logical graph, for arbitrary graphs; PCSR invariants hold for
//! every admissible GPN.

use gsi::graph::basic::BasicStore;
use gsi::graph::compressed::CompressedStore;
use gsi::graph::csr::Csr;
use gsi::graph::partition::partition_by_label;
use gsi::graph::pcsr::{Pcsr, PcsrStore};
use gsi::graph::{GraphBuilder, LabeledStore};
use gsi::prelude::*;
use proptest::prelude::*;

/// Strategy: an arbitrary labeled multigraph.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        let edges =
            proptest::collection::vec((0..n as u32, 0..n as u32, 0u32..6, 0u32..4), 0..max_m);
        (proptest::collection::vec(0u32..5, n), edges).prop_map(|(vlabels, edges)| {
            let mut b = GraphBuilder::new();
            for l in vlabels {
                b.add_vertex(l);
            }
            for (u, v, l, _) in edges {
                if u != v {
                    b.add_edge(u, v, l);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_stores_agree_with_graph(g in arb_graph(40, 120)) {
        let gpu = Gpu::new(DeviceConfig::test_device());
        let stores: Vec<Box<dyn LabeledStore>> = vec![
            Box::new(Csr::build(&g)),
            Box::new(BasicStore::build(&g)),
            Box::new(CompressedStore::build(&g)),
            Box::new(PcsrStore::build(&g)),
        ];
        for v in 0..g.n_vertices() as u32 {
            for l in 0..6u32 {
                let truth: Vec<u32> = g.neighbors_with_label(v, l).collect();
                for s in &stores {
                    let got = s.neighbors_with_label(&gpu, v, l);
                    prop_assert_eq!(
                        &*got.list, truth.as_slice(),
                        "{} v={} l={}", s.kind(), v, l
                    );
                    prop_assert_eq!(s.neighbor_count(&gpu, v, l), truth.len());
                }
            }
        }
    }

    #[test]
    fn pcsr_all_gpn_equivalent(g in arb_graph(30, 80), gpn in 2usize..=16) {
        let gpu = Gpu::new(DeviceConfig::test_device());
        let store = PcsrStore::build_with_gpn(&g, gpn);
        for v in 0..g.n_vertices() as u32 {
            for l in 0..6u32 {
                let truth: Vec<u32> = g.neighbors_with_label(v, l).collect();
                let got = store.neighbors_with_label(&gpu, v, l);
                prop_assert_eq!(&*got.list, truth.as_slice());
            }
        }
    }

    #[test]
    fn pcsr_claim1_no_build_panic_and_chains_terminate(g in arb_graph(60, 200)) {
        // Claim 1: the build always finds empty groups for overflow; every
        // lookup chain terminates (implicitly: build+lookups don't hang).
        for p in partition_by_label(&g) {
            let pcsr = Pcsr::build_with_gpn(&p, 2); // worst case: 1 key/group
            for &v in &p.vertices {
                prop_assert!(pcsr.chain_length(v) >= 1);
                prop_assert!(!pcsr.neighbors_host(v).is_empty());
            }
        }
    }

    #[test]
    fn prefix_sum_matches_reference(xs in proptest::collection::vec(0u32..1000, 0..200)) {
        let gpu = Gpu::new(DeviceConfig::test_device());
        let got = gsi::sim::scan::exclusive_prefix_sum(&gpu, &xs);
        let mut acc = 0u32;
        let mut expect = vec![0u32];
        for &x in &xs {
            acc += x;
            expect.push(acc);
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn bitset_matches_hashset(members in proptest::collection::btree_set(0u32..2000, 0..200)) {
        let gpu = Gpu::new(DeviceConfig::test_device());
        let list: Vec<u32> = members.iter().copied().collect();
        let bs = gsi::sim::DeviceBitset::from_members(&gpu, 2000, &list);
        for v in 0..2000u32 {
            prop_assert_eq!(bs.contains_host(v), members.contains(&v));
        }
    }

    #[test]
    fn signature_filter_soundness(g in arb_graph(30, 90), seed in 0u64..1000) {
        // The signature filter must never prune a vertex that brute-force
        // NLF containment admits.
        use gsi::signature::{filter_signature, SignatureConfig, SignatureTable, Layout};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(q) = gsi::graph::query_gen::random_walk_query(&g, 3, &mut rng) else {
            return Ok(());
        };
        let gpu = Gpu::new(DeviceConfig::test_device());
        let cfg = SignatureConfig::with_n(64); // small N: max collision stress
        let table = SignatureTable::build(&gpu, &g, &cfg, Layout::ColumnFirst);
        let cands = filter_signature(&gpu, &table, &q, &cfg);
        // Ground truth containment per query vertex.
        for u in 0..q.n_vertices() as u32 {
            let need: Vec<(u32, u32)> = q
                .neighbors(u)
                .iter()
                .map(|&(w, l)| (l, q.vlabel(w)))
                .collect();
            'data: for v in 0..g.n_vertices() as u32 {
                if g.vlabel(v) != q.vlabel(u) {
                    continue;
                }
                // multiset containment check
                let mut have: Vec<(u32, u32)> = g
                    .neighbors(v)
                    .iter()
                    .map(|&(w, l)| (l, g.vlabel(w)))
                    .collect();
                for n in &need {
                    match have.iter().position(|h| h == n) {
                        Some(i) => {
                            have.swap_remove(i);
                        }
                        None => continue 'data,
                    }
                }
                prop_assert!(
                    cands[u as usize].contains(v),
                    "filter pruned true candidate v{} for u{}", v, u
                );
            }
        }
    }
}
