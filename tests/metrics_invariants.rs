//! Metric invariants: the directional claims of the paper's ablations must
//! hold as *inequalities on counted transactions* — Prealloc-Combine never
//! reads more than two-step, the write cache never stores more than direct
//! writes, PCSR never reads more than scanning CSR, coalesced layouts never
//! read more than scattered ones.

use gsi::graph::generate::{barabasi_albert, LabelModel};
use gsi::graph::query_gen::random_walk_query;
use gsi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(seed: u64, n: usize) -> (Graph, Graph) {
    let model = LabelModel::zipf(4, 4, 0.9);
    let mut rng = StdRng::seed_from_u64(seed);
    let data = barabasi_albert(n, 3, &model, &mut rng);
    let query = random_walk_query(&data, 5, &mut rng).expect("query");
    (data, query)
}

fn run_stats(cfg: GsiConfig, data: &Graph, query: &Graph) -> RunStats {
    let engine = GsiEngine::with_gpu(cfg, Gpu::new(DeviceConfig::test_device()));
    let prepared = engine.prepare(data);
    engine.query(data, &prepared, query).expect("plans").stats
}

#[test]
fn prealloc_combine_reads_less_than_two_step() {
    // Table VI "+PC": the elimination of joining-twice lowers join GLD.
    for seed in 0..4u64 {
        let (data, query) = workload(seed, 250);
        let pc = run_stats(GsiConfig::gsi_pc(), &data, &query);
        let ts = run_stats(GsiConfig::gsi_ds(), &data, &query);
        assert!(
            pc.join_gld() <= ts.join_gld(),
            "seed {seed}: PC {} > two-step {}",
            pc.join_gld(),
            ts.join_gld()
        );
    }
}

#[test]
fn pcsr_reads_less_than_csr_scan() {
    // Table VI "+DS": PCSR locating replaces full-row scans.
    for seed in 4..8u64 {
        let (data, query) = workload(seed, 250);
        let ds = run_stats(GsiConfig::gsi_ds(), &data, &query);
        let base = run_stats(GsiConfig::gsi_base(), &data, &query);
        assert!(
            ds.join_gld() <= base.join_gld(),
            "seed {seed}: PCSR {} > CSR {}",
            ds.join_gld(),
            base.join_gld()
        );
        // CSR also wastes lanes on label filtering; PCSR does not.
        assert!(ds.device.idle_lane_work <= base.device.idle_lane_work);
    }
}

#[test]
fn gpu_friendly_set_ops_reduce_gld_and_kernels() {
    // Table VI "+SO": shared-memory caching + bitset probes cut loads, and
    // fusing set ops into the join kernel eliminates per-op launches.
    for seed in 8..12u64 {
        let (data, query) = workload(seed, 250);
        let so = run_stats(GsiConfig::gsi(), &data, &query);
        let naive = run_stats(GsiConfig::gsi_pc(), &data, &query);
        assert!(
            so.join_gld() <= naive.join_gld(),
            "seed {seed}: SO {} > naive {}",
            so.join_gld(),
            naive.join_gld()
        );
        assert!(
            so.kernels() < naive.kernels(),
            "seed {seed}: SO launches {} !< naive {}",
            so.kernels(),
            naive.kernels()
        );
    }
}

#[test]
fn write_cache_reduces_gst() {
    // Table VII: batched 128B flushes vs one transaction per element.
    for seed in 12..16u64 {
        let (data, query) = workload(seed, 250);
        let cached = run_stats(GsiConfig::gsi(), &data, &query);
        let uncached = run_stats(
            GsiConfig {
                write_cache: false,
                ..GsiConfig::gsi()
            },
            &data,
            &query,
        );
        assert!(
            cached.join_gst() <= uncached.join_gst(),
            "seed {seed}: cached {} > uncached {}",
            cached.join_gst(),
            uncached.join_gst()
        );
    }
}

#[test]
fn duplicate_removal_reduces_gld() {
    // Table XI: shared input buffers cut duplicate loads.
    for seed in 16..20u64 {
        let (data, query) = workload(seed, 300);
        let dr = run_stats(GsiConfig::gsi_opt(), &data, &query);
        let no_dr = run_stats(GsiConfig::gsi_lb(), &data, &query);
        assert!(
            dr.join_gld() <= no_dr.join_gld(),
            "seed {seed}: DR {} > no-DR {}",
            dr.join_gld(),
            no_dr.join_gld()
        );
    }
}

#[test]
fn column_first_filter_reads_less_than_row_first() {
    // §III-A / Fig. 8: coalesced signature reads.
    for seed in 20..23u64 {
        let (data, query) = workload(seed, 300);
        let col = run_stats(GsiConfig::gsi(), &data, &query);
        let row = run_stats(
            GsiConfig {
                signature_layout: Layout::RowFirst,
                ..GsiConfig::gsi()
            },
            &data,
            &query,
        );
        assert!(
            col.filter_device.gld_transactions < row.filter_device.gld_transactions,
            "seed {seed}: col {} !< row {}",
            col.filter_device.gld_transactions,
            row.filter_device.gld_transactions
        );
    }
}

#[test]
fn combined_alloc_issues_fewer_requests() {
    // §V Prealloc-Combine: one GBA request vs one per row.
    let (data, query) = workload(30, 250);
    let combined = run_stats(GsiConfig::gsi(), &data, &query);
    let per_row = run_stats(
        GsiConfig {
            combined_alloc: false,
            ..GsiConfig::gsi()
        },
        &data,
        &query,
    );
    assert!(
        combined.device.device_allocs < per_row.device.device_allocs,
        "combined {} !< per-row {}",
        combined.device.device_allocs,
        per_row.device.device_allocs
    );
}

#[test]
fn load_balance_lowers_max_block_load() {
    // §VI-A: the planner flattens block workloads (wall-time is hardware-
    // dependent; the planner's balance metric is deterministic).
    use gsi::engine::load_balance::{max_block_load, plan_kernels};
    let (data, query) = workload(31, 400);
    // Derive realistic skewed loads: degrees of candidate rows.
    let loads: Vec<usize> = (0..data.n_vertices() as u32)
        .map(|v| data.degree(v))
        .collect();
    let flat = plan_kernels(&loads, None, 32);
    let lb = LbParams {
        w1: 256,
        w2: 128,
        w3: 64,
    };
    let balanced = plan_kernels(&loads, Some(&lb), 32);
    assert!(max_block_load(&balanced) <= max_block_load(&flat));
    let _ = query;
}

#[test]
fn min_freq_first_edge_never_enlarges_gba() {
    // Algorithm 4 line 1: choosing the rarest label bounds the GBA tighter.
    for seed in 32..35u64 {
        let (data, query) = workload(seed, 250);
        let with = run_stats(GsiConfig::gsi(), &data, &query);
        let without = run_stats(
            GsiConfig {
                first_edge_min_freq: false,
                ..GsiConfig::gsi()
            },
            &data,
            &query,
        );
        assert!(
            with.device.device_alloc_bytes <= without.device.device_alloc_bytes,
            "seed {seed}: min-freq {} > arbitrary {}",
            with.device.device_alloc_bytes,
            without.device.device_alloc_bytes
        );
    }
}
