//! Cross-engine agreement: every engine in the repository — GSI (all
//! presets), GpSM, GunrockSM, VF2, VF3-like, CFL-like — must produce the
//! same match set on the same workload.

use gsi::baselines::{cfl, gpsm, gunrock, ullmann, vf2, vf3};
use gsi::graph::generate::{barabasi_albert, LabelModel};
use gsi::graph::query_gen::random_walk_query;
use gsi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(seed: u64, n: usize, qn: usize) -> (Graph, Graph) {
    let model = LabelModel::zipf(5, 4, 0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    let data = barabasi_albert(n, 2, &model, &mut rng);
    let query = random_walk_query(&data, qn, &mut rng).expect("query");
    (data, query)
}

#[test]
fn all_engines_agree() {
    for seed in 0..5u64 {
        let (data, query) = workload(seed, 150, 5);
        let oracle = vf2::run(&data, &query, None).assignments;

        // CPU engines.
        assert_eq!(
            vf3::run(&data, &query, None).assignments,
            oracle,
            "vf3 seed {seed}"
        );
        assert_eq!(
            cfl::run(&data, &query, None).assignments,
            oracle,
            "cfl seed {seed}"
        );
        assert_eq!(
            ullmann::run(&data, &query, None).assignments,
            oracle,
            "ullmann seed {seed}"
        );

        // GPU edge-oriented baselines.
        let gp = gpsm::engine(Gpu::new(DeviceConfig::test_device()));
        let prep = gp.prepare(&data);
        assert_eq!(
            gp.run(&data, &prep, &query).assignments,
            oracle,
            "gpsm {seed}"
        );

        let gk = gunrock::engine(Gpu::new(DeviceConfig::test_device()));
        let prep = gk.prepare(&data);
        assert_eq!(
            gk.run(&data, &prep, &query).assignments,
            oracle,
            "gunrock {seed}"
        );

        // GSI.
        let engine =
            GsiEngine::with_gpu(GsiConfig::gsi_opt(), Gpu::new(DeviceConfig::test_device()));
        let prepared = engine.prepare(&data);
        assert_eq!(
            engine
                .query(&data, &prepared, &query)
                .expect("plans")
                .matches
                .canonical(),
            oracle,
            "gsi {seed}"
        );
    }
}

#[test]
fn engines_agree_on_star_and_cycle_patterns() {
    let model = LabelModel::uniform(3, 2);
    let mut rng = StdRng::seed_from_u64(77);
    let data = barabasi_albert(120, 3, &model, &mut rng);

    // Star: center with 3 leaves.
    let mut qb = GraphBuilder::new();
    let c = qb.add_vertex(0);
    for _ in 0..3 {
        let l = qb.add_vertex(1);
        qb.add_edge(c, l, 0);
    }
    let star = qb.build();

    // 4-cycle.
    let mut qb = GraphBuilder::new();
    let u: Vec<u32> = (0..4).map(|i| qb.add_vertex(i % 2)).collect();
    for i in 0..4 {
        qb.add_edge(u[i], u[(i + 1) % 4], 0);
    }
    let cycle = qb.build();

    for (name, query) in [("star", star), ("cycle", cycle)] {
        let oracle = vf2::run(&data, &query, None).assignments;
        let engine =
            GsiEngine::with_gpu(GsiConfig::gsi_opt(), Gpu::new(DeviceConfig::test_device()));
        let prepared = engine.prepare(&data);
        assert_eq!(
            engine
                .query(&data, &prepared, &query)
                .expect("plans")
                .matches
                .canonical(),
            oracle,
            "{name}: gsi"
        );
        let gp = gpsm::engine(Gpu::new(DeviceConfig::test_device()));
        let prep = gp.prepare(&data);
        assert_eq!(
            gp.run(&data, &prep, &query).assignments,
            oracle,
            "{name}: gpsm"
        );
        assert_eq!(
            cfl::run(&data, &query, None).assignments,
            oracle,
            "{name}: cfl"
        );
    }
}

#[test]
fn single_vertex_queries_agree() {
    let (data, _) = workload(11, 80, 3);
    let mut qb = GraphBuilder::new();
    qb.add_vertex(1);
    let query = qb.build();
    let oracle = vf2::run(&data, &query, None).assignments;
    let engine = GsiEngine::with_gpu(GsiConfig::gsi(), Gpu::new(DeviceConfig::test_device()));
    let prepared = engine.prepare(&data);
    assert_eq!(
        engine
            .query(&data, &prepared, &query)
            .expect("plans")
            .matches
            .canonical(),
        oracle
    );
    let gp = gpsm::engine(Gpu::new(DeviceConfig::test_device()));
    let prep = gp.prepare(&data);
    assert_eq!(gp.run(&data, &prep, &query).assignments, oracle);
}
