//! Differential gate for the cost-based join-order optimizer: for every
//! fuzzed query, the optimized plan's match table must be **bit-identical**
//! (in canonical, query-vertex-indexed form — the join orders differ by
//! design) to the greedy plan's, across **both execution backends and all
//! three join schemes** (plus a mixed cell where the cost model promotes
//! high-multiplicity steps to radix-hash), with exactly reproducible
//! device counters per
//! `(planner, backend, scheme)` cell. A cheaper plan that changed even one
//! row would be a correctness bug, not an optimization.
//!
//! `PLANNER_FUZZ_CASES` scales the number of fuzzed queries (default 24;
//! CI raises it).

use gsi::graph::generate::{barabasi_albert, erdos_renyi, LabelModel};
use gsi::graph::query_gen::random_walk_query;
use gsi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fuzz_cases() -> usize {
    std::env::var("PLANNER_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

fn test_engine(cfg: GsiConfig) -> GsiEngine {
    GsiEngine::with_gpu(cfg, Gpu::new(DeviceConfig::test_device()))
}

/// One run; returns (canonical matches, device delta, executed order).
fn run_once(
    engine: &GsiEngine,
    data: &Graph,
    prepared: &gsi::engine::PreparedData,
    query: &Graph,
    planner: PlannerKind,
) -> (Vec<Vec<u32>>, gsi::sim::StatsSnapshot, Vec<u32>) {
    let snap0 = engine.gpu().stats().snapshot();
    let out = engine
        .query_with_options(
            data,
            prepared,
            query,
            QueryOptions {
                planner: Some(planner),
                ..QueryOptions::default()
            },
        )
        .expect("random-walk queries are connected");
    let delta = engine.gpu().stats().snapshot() - snap0;
    assert!(out.plan.covers(query), "executed plan must cover");
    assert_eq!(
        out.explain.steps.len(),
        out.plan.order.len(),
        "explain reports every join position"
    );
    (out.matches.canonical(), delta, out.plan.order)
}

#[test]
fn costed_plans_match_greedy_plans_across_backends_and_schemes() {
    let mut rng = StdRng::seed_from_u64(0x0515_C0DE);
    let graphs: Vec<Graph> = vec![
        barabasi_albert(220, 3, &LabelModel::zipf(4, 3, 0.9), &mut rng),
        erdos_renyi(180, 540, &LabelModel::uniform(3, 4), &mut rng),
        erdos_renyi(120, 600, &LabelModel::zipf(5, 2, 0.6), &mut rng),
    ];
    let cases = fuzz_cases();
    let mut checked = 0usize;
    let mut order_diverged = 0usize;

    for (gi, data) in graphs.iter().enumerate() {
        // Engines per (backend, scheme); all four must agree per planner.
        let configs: Vec<(String, GsiConfig)> = [
            ("serial", BackendKind::Serial),
            ("host-parallel", BackendKind::HostParallel),
        ]
        .into_iter()
        .flat_map(|(bname, backend)| {
            [
                ("prealloc", JoinScheme::PreallocCombine, None),
                ("two-step", JoinScheme::TwoStep, None),
                ("radix-hash", JoinScheme::RadixHash, None),
                // Prealloc base scheme with cost-model promotion: any step
                // whose estimated fan-out crosses 1.0 runs radix-hash, so
                // fuzzed queries exercise mixed-strategy plans too.
                ("prealloc+radix", JoinScheme::PreallocCombine, Some(1.0)),
            ]
            .into_iter()
            .map(move |(sname, scheme, radix_at)| {
                let cfg = GsiConfig {
                    join_scheme: scheme,
                    radix_join_threshold: radix_at,
                    ..GsiConfig::gsi_opt()
                }
                .with_backend(backend, if backend == BackendKind::Serial { 0 } else { 3 });
                (format!("{bname}/{sname}"), cfg)
            })
        })
        .collect();

        let engines: Vec<(String, GsiEngine, Graph)> = configs
            .into_iter()
            .map(|(name, cfg)| (name, test_engine(cfg), data.clone()))
            .collect();

        for case in 0..cases.div_ceil(graphs.len()) {
            let size = 3 + (case % 4);
            let Some(query) = random_walk_query(data, size, &mut rng) else {
                continue;
            };
            let mut reference: Option<Vec<Vec<u32>>> = None;
            for (name, engine, data) in &engines {
                let prepared = engine.prepare(data);
                let (g_canon, g_dev, g_order) =
                    run_once(engine, data, &prepared, &query, PlannerKind::Greedy);
                let (c_canon, c_dev, c_order) =
                    run_once(engine, data, &prepared, &query, PlannerKind::CostBased);

                // The differential gate itself.
                assert_eq!(
                    g_canon, c_canon,
                    "graph {gi} case {case} [{name}]: planners disagree on matches"
                );
                if g_order != c_order {
                    order_diverged += 1;
                }

                // Determinism of each cell: an identical re-run charges
                // exactly the same device counters.
                let (g2, g2_dev, _) =
                    run_once(engine, data, &prepared, &query, PlannerKind::Greedy);
                let (c2, c2_dev, _) =
                    run_once(engine, data, &prepared, &query, PlannerKind::CostBased);
                assert_eq!(g_canon, g2, "greedy rerun diverged [{name}]");
                assert_eq!(c_canon, c2, "costed rerun diverged [{name}]");
                assert_eq!(g_dev, g2_dev, "greedy counters non-deterministic [{name}]");
                assert_eq!(c_dev, c2_dev, "costed counters non-deterministic [{name}]");

                // All (backend, scheme) cells agree on the match set.
                match &reference {
                    None => reference = Some(c_canon),
                    Some(expect) => {
                        assert_eq!(
                            &c_canon, expect,
                            "graph {gi} case {case} [{name}]: cell disagrees"
                        )
                    }
                }
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "fuzz loop must exercise at least one query");
    // The optimizer must actually be choosing different orders somewhere —
    // otherwise this gate is vacuously comparing a planner with itself.
    assert!(
        order_diverged > 0,
        "cost-based planner never diverged from greedy across {checked} runs"
    );
}

#[test]
fn costed_plans_agree_with_greedy_on_the_paper_example() {
    // The Fig. 1 graph: a deterministic, human-checkable instance.
    let mut b = GraphBuilder::new();
    let v0 = b.add_vertex(0);
    let bs: Vec<u32> = (0..40).map(|_| b.add_vertex(1)).collect();
    let cs: Vec<u32> = (0..41).map(|_| b.add_vertex(2)).collect();
    for &vb in &bs {
        b.add_edge(v0, vb, 0);
    }
    let last = *cs.last().unwrap();
    b.add_edge(v0, last, 1);
    for (i, &vb) in bs.iter().enumerate() {
        b.add_edge(vb, cs[i], 0);
        b.add_edge(vb, last, 0);
    }
    let data = b.build();

    let mut qb = GraphBuilder::new();
    let u0 = qb.add_vertex(0);
    let u1 = qb.add_vertex(1);
    let u2 = qb.add_vertex(2);
    let u3 = qb.add_vertex(2);
    qb.add_edge(u0, u1, 0);
    qb.add_edge(u0, u2, 1);
    qb.add_edge(u1, u2, 0);
    qb.add_edge(u1, u3, 0);
    let query = qb.build();

    for planner in [PlannerKind::Greedy, PlannerKind::CostBased] {
        let engine = test_engine(GsiConfig::gsi_opt().with_planner(planner));
        let prepared = engine.prepare(&data);
        let out = engine.query(&data, &prepared, &query).expect("plans");
        assert_eq!(out.matches.len(), 40, "{planner}: match count");
        out.matches.verify(&data, &query).expect("valid embeddings");
    }
}
