//! Oracle tests: the GSI engine must return exactly the match set the VF2
//! reference enumerates, on randomized graphs and workloads — including
//! graphs that *mutate* between queries, where the engine serves from
//! incrementally re-prepared structures while VF2 recomputes from the
//! mutated logical graph.

use gsi::baselines::vf2;
use gsi::graph::generate::{barabasi_albert, erdos_renyi, mesh, LabelModel};
use gsi::graph::query_gen::{random_walk_query, random_walk_query_with_edges};
use gsi::graph::update::random_update_batch;
use gsi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_engine(cfg: GsiConfig) -> GsiEngine {
    GsiEngine::with_gpu(cfg, Gpu::new(DeviceConfig::test_device()))
}

fn check_against_oracle(data: &Graph, query: &Graph, cfg: GsiConfig, tag: &str) {
    let engine = test_engine(cfg);
    let prepared = engine.prepare(data);
    let out = engine.query(data, &prepared, query).expect("plans");
    assert!(!out.stats.timed_out, "{tag}: unexpected timeout");
    out.matches
        .verify(data, query)
        .unwrap_or_else(|e| panic!("{tag}: invalid match: {e}"));
    let oracle = vf2::run(data, query, None);
    assert_eq!(
        out.matches.canonical(),
        oracle.assignments,
        "{tag}: match set differs from VF2"
    );
}

#[test]
fn gsi_opt_matches_vf2_on_scale_free_graphs() {
    for seed in 0..8u64 {
        let model = LabelModel::zipf(5, 4, 0.9);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = barabasi_albert(200, 3, &model, &mut rng);
        let query = random_walk_query(&data, 5, &mut rng).expect("query");
        check_against_oracle(&data, &query, GsiConfig::gsi_opt(), &format!("seed {seed}"));
    }
}

#[test]
fn gsi_matches_vf2_on_erdos_renyi() {
    for seed in 20..26u64 {
        let model = LabelModel::uniform(4, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = erdos_renyi(150, 450, &model, &mut rng);
        if let Some(query) = random_walk_query(&data, 4, &mut rng) {
            check_against_oracle(&data, &query, GsiConfig::gsi(), &format!("er seed {seed}"));
        }
    }
}

#[test]
fn gsi_matches_vf2_on_mesh() {
    let model = LabelModel::uniform(3, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let data = mesh(15, 15, &model, &mut rng);
    for _ in 0..4 {
        let query = random_walk_query(&data, 4, &mut rng).expect("query");
        check_against_oracle(&data, &query, GsiConfig::gsi_opt(), "mesh");
    }
}

#[test]
fn gsi_base_matches_vf2() {
    // The unoptimized GSI- pipeline (CSR + two-step + naive set ops) must be
    // just as correct.
    for seed in 40..44u64 {
        let model = LabelModel::zipf(4, 3, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = barabasi_albert(120, 2, &model, &mut rng);
        let query = random_walk_query(&data, 4, &mut rng).expect("query");
        check_against_oracle(
            &data,
            &query,
            GsiConfig::gsi_base(),
            &format!("base {seed}"),
        );
    }
}

#[test]
fn dense_queries_with_extra_edges() {
    // Queries densified beyond the spanning walk exercise multi-edge
    // linking steps (several intersect kernels per iteration).
    for seed in 60..64u64 {
        let model = LabelModel::zipf(3, 3, 0.7);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = barabasi_albert(150, 3, &model, &mut rng);
        if let Some(query) = random_walk_query_with_edges(&data, 5, 7, &mut rng) {
            assert!(query.n_edges() >= 7);
            check_against_oracle(
                &data,
                &query,
                GsiConfig::gsi_opt(),
                &format!("dense {seed}"),
            );
        }
    }
}

#[test]
fn queries_with_no_matches_are_empty_for_both() {
    // A query whose labels cannot all be satisfied.
    let model = LabelModel::uniform(3, 3);
    let mut rng = StdRng::seed_from_u64(99);
    let data = barabasi_albert(100, 2, &model, &mut rng);
    let mut qb = GraphBuilder::new();
    let u0 = qb.add_vertex(777); // label not in data
    let u1 = qb.add_vertex(0);
    qb.add_edge(u0, u1, 0);
    let query = qb.build();
    check_against_oracle(&data, &query, GsiConfig::gsi_opt(), "no-match");
}

/// Differential oracle under churn: interleave mutation batches with
/// queries. After every batch, the engine — serving from *incrementally*
/// re-prepared structures — must return exactly VF2's match set on the
/// mutated graph, across both execution backends and both join schemes.
/// The incremental path must also be indistinguishable from a cold rebuild:
/// bit-identical match tables and exact device-ledger counters.
#[test]
fn mutated_graphs_track_vf2_across_backends_and_schemes() {
    let configs: Vec<(String, GsiConfig)> = [JoinScheme::PreallocCombine, JoinScheme::TwoStep]
        .into_iter()
        .flat_map(|scheme| {
            let base = GsiConfig {
                join_scheme: scheme,
                ..GsiConfig::gsi_opt()
            };
            [
                (format!("{scheme:?}/serial"), base.clone()),
                (
                    format!("{scheme:?}/parallel"),
                    base.with_backend(BackendKind::HostParallel, 3),
                ),
            ]
        })
        .collect();

    for (tag, cfg) in configs {
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        let model = LabelModel::zipf(4, 3, 0.8);
        let mut data = barabasi_albert(120, 2, &model, &mut rng);
        let engine = test_engine(cfg);
        let mut prepared = engine.prepare(&data);

        for round in 0..5 {
            let batch = random_update_batch(&data, 8, 3, &mut rng);
            let (updated, inc, _report) = engine
                .apply_updates(&data, &prepared, &batch)
                .expect("generated batch is valid");

            // Incremental re-prepare vs cold rebuild: queries must be
            // bit-identical in tables and exact in device counters.
            let cold = engine.prepare_shared(&updated);
            let Some(query) = (0..50).find_map(|_| random_walk_query(&updated, 4, &mut rng)) else {
                // Graph too fragmented for this query size; keep churning.
                data = updated;
                prepared = inc;
                continue;
            };
            let snap0 = engine.gpu().stats().snapshot();
            let a = engine.query(&updated, &inc, &query).expect("plans");
            let snap1 = engine.gpu().stats().snapshot();
            let b = engine.query(&updated, &cold, &query).expect("plans");
            let snap2 = engine.gpu().stats().snapshot();
            assert_eq!(
                a.matches.table, b.matches.table,
                "{tag} round {round}: incremental vs rebuild tables"
            );
            assert_eq!(
                snap1 - snap0,
                snap2 - snap1,
                "{tag} round {round}: device counters"
            );

            // Both must equal the VF2 oracle on the mutated graph.
            a.matches
                .verify(&updated, &query)
                .unwrap_or_else(|e| panic!("{tag} round {round}: invalid match: {e}"));
            let oracle = vf2::run(&updated, &query, None);
            assert_eq!(
                a.matches.canonical(),
                oracle.assignments,
                "{tag} round {round}: match set differs from VF2"
            );

            data = updated;
            prepared = inc;
        }
    }
}

#[test]
fn multigraph_edges_between_same_pair() {
    // Two parallel edges with different labels between the same vertices.
    let mut b = GraphBuilder::new();
    let v0 = b.add_vertex(0);
    let v1 = b.add_vertex(1);
    let v2 = b.add_vertex(1);
    b.add_edge(v0, v1, 0);
    b.add_edge(v0, v1, 1);
    b.add_edge(v0, v2, 0);
    let data = b.build();
    let mut qb = GraphBuilder::new();
    let u0 = qb.add_vertex(0);
    let u1 = qb.add_vertex(1);
    qb.add_edge(u0, u1, 0);
    qb.add_edge(u0, u1, 1);
    let query = qb.build();
    check_against_oracle(&data, &query, GsiConfig::gsi_opt(), "multigraph");
}
