//! End-to-end runs on (shrunken) Table III dataset stand-ins, checked
//! against the VF2 oracle where tractable.

use gsi::baselines::vf2;
use gsi::datasets::{build, statistics, DatasetKind, DatasetSpec};
use gsi::graph::query_gen::random_walk_query;
use gsi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn tiny(kind: DatasetKind) -> Graph {
    let scale = match kind {
        DatasetKind::Enron => 0.02,
        DatasetKind::Gowalla => 0.005,
        DatasetKind::RoadCentral => 0.0003,
        DatasetKind::DBpedia => 0.00006,
        DatasetKind::WatDiv => 0.0002,
    };
    build(&DatasetSpec::scaled(kind, scale))
}

#[test]
fn every_dataset_standin_runs_and_matches_oracle() {
    for kind in DatasetKind::ALL {
        let data = tiny(kind);
        let stats = statistics(&data);
        assert!(stats.n_vertices > 0 && stats.n_edges > 0, "{kind:?}");
        let mut rng = StdRng::seed_from_u64(kind as u64 + 100);
        let Some(query) = random_walk_query(&data, 4, &mut rng) else {
            panic!("{kind:?}: query generation failed");
        };
        let engine =
            GsiEngine::with_gpu(GsiConfig::gsi_opt(), Gpu::new(DeviceConfig::test_device()));
        let prepared = engine.prepare(&data);
        let out = engine.query(&data, &prepared, &query).expect("plans");
        assert!(!out.stats.timed_out, "{kind:?}");
        out.matches.verify(&data, &query).expect("valid");
        let oracle = vf2::run(&data, &query, Some(Duration::from_secs(30)));
        assert!(!oracle.timed_out, "{kind:?}: oracle timed out");
        assert_eq!(
            out.matches.canonical(),
            oracle.assignments,
            "{kind:?}: GSI disagrees with VF2"
        );
    }
}

#[test]
fn default_query_size_12_on_enron_standin() {
    // The paper's default workload: |V(Q)| = 12 random-walk queries. A
    // small scale keeps the all-match enumeration bounded (clustered labels
    // make 12-vertex queries match-heavy); queries that still explode are
    // cut by the timeout and skipped.
    let data = build(&DatasetSpec::scaled(DatasetKind::Enron, 0.015));
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = GsiConfig {
        max_intermediate_rows: 2_000_000,
        ..GsiConfig::gsi_opt()
    };
    let engine = GsiEngine::with_gpu(cfg, Gpu::new(DeviceConfig::test_device()));
    let prepared = engine.prepare(&data);
    let mut any_matches = false;
    for _ in 0..3 {
        let Some(query) = random_walk_query(&data, 12, &mut rng) else {
            continue;
        };
        let out = engine
            .query_with_timeout(&data, &prepared, &query, Some(Duration::from_secs(10)))
            .expect("plans");
        if out.stats.timed_out {
            continue;
        }
        out.matches.verify(&data, &query).expect("valid");
        // A walk-extracted query always has ≥ 1 match (itself).
        assert!(!out.matches.is_empty());
        any_matches = true;
    }
    assert!(any_matches, "no 12-vertex query completed");
}

#[test]
fn prepared_structures_have_sane_sizes() {
    let data = tiny(DatasetKind::Gowalla);
    for storage in [StorageKind::Pcsr, StorageKind::Csr, StorageKind::Compressed] {
        let cfg = GsiConfig {
            storage,
            ..GsiConfig::gsi_opt()
        };
        let engine = GsiEngine::with_gpu(cfg, Gpu::new(DeviceConfig::test_device()));
        let prepared = engine.prepare(&data);
        let bytes = prepared.store().space_bytes();
        assert!(bytes > 0);
        // All structures are within a small constant of |E| words, except BR.
        assert!(
            bytes < 200 * data.n_edges() + 130 * data.n_vertices(),
            "{storage:?}: {bytes}B"
        );
    }
}

#[test]
fn scalability_series_grows_linearly() {
    // Fig. 13's generator: watdiv10M..watdiv30M (scaled ∝ 1,2,3).
    let mut last_edges = 0;
    for i in 1..=3usize {
        let spec = DatasetSpec::scaled(DatasetKind::WatDiv, 0.0002 * i as f64);
        let g = build(&spec);
        assert!(g.n_edges() > last_edges, "series must grow");
        last_edges = g.n_edges();
    }
}
