//! Config-matrix tests: every combination of the engine's switches must
//! produce the identical match set — techniques change cost, never results.

use gsi::baselines::vf2;
use gsi::graph::generate::{barabasi_albert, LabelModel};
use gsi::graph::query_gen::random_walk_query;
use gsi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(seed: u64) -> (Graph, Graph) {
    let model = LabelModel::zipf(4, 4, 0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    let data = barabasi_albert(160, 3, &model, &mut rng);
    let query = random_walk_query(&data, 5, &mut rng).expect("query");
    (data, query)
}

fn run(cfg: GsiConfig, data: &Graph, query: &Graph) -> Vec<Vec<u32>> {
    let engine = GsiEngine::with_gpu(cfg, Gpu::new(DeviceConfig::test_device()));
    let prepared = engine.prepare(data);
    let out = engine.query(data, &prepared, query).expect("plans");
    assert!(!out.stats.timed_out);
    out.matches.verify(data, query).expect("valid embeddings");
    out.matches.canonical()
}

#[test]
fn full_matrix_storage_join_setops() {
    let (data, query) = workload(1);
    let oracle = vf2::run(&data, &query, None).assignments;
    for storage in [
        StorageKind::Csr,
        StorageKind::Basic,
        StorageKind::Compressed,
        StorageKind::Pcsr,
    ] {
        for join_scheme in [JoinScheme::PreallocCombine, JoinScheme::TwoStep] {
            for set_ops in [SetOpStrategy::Naive, SetOpStrategy::GpuFriendly] {
                let cfg = GsiConfig {
                    storage,
                    join_scheme,
                    set_ops,
                    ..GsiConfig::gsi()
                };
                let got = run(cfg, &data, &query);
                assert_eq!(
                    got, oracle,
                    "storage={storage:?} join={join_scheme:?} setops={set_ops:?}"
                );
            }
        }
    }
}

#[test]
fn matrix_cache_lb_dedup() {
    let (data, query) = workload(2);
    let oracle = vf2::run(&data, &query, None).assignments;
    for write_cache in [false, true] {
        for lb in [None, Some(LbParams::default())] {
            for dedup in [false, true] {
                let cfg = GsiConfig {
                    write_cache,
                    load_balance: lb,
                    duplicate_removal: dedup,
                    ..GsiConfig::gsi()
                };
                let got = run(cfg, &data, &query);
                assert_eq!(got, oracle, "cache={write_cache} lb={lb:?} dedup={dedup}");
            }
        }
    }
}

#[test]
fn matrix_filters_and_layouts() {
    let (data, query) = workload(3);
    let oracle = vf2::run(&data, &query, None).assignments;
    for filter in [
        FilterStrategy::Signature,
        FilterStrategy::LabelDegree,
        FilterStrategy::LabelOnly,
    ] {
        for layout in [Layout::RowFirst, Layout::ColumnFirst] {
            let cfg = GsiConfig {
                filter,
                signature_layout: layout,
                ..GsiConfig::gsi_opt()
            };
            let got = run(cfg, &data, &query);
            assert_eq!(got, oracle, "filter={filter:?} layout={layout:?}");
        }
    }
}

#[test]
fn matrix_signature_sizes_and_gpn() {
    let (data, query) = workload(4);
    let oracle = vf2::run(&data, &query, None).assignments;
    for n_bits in [64, 128, 256, 512] {
        for gpn in [2, 4, 16] {
            let cfg = GsiConfig {
                signature: SignatureConfig::with_n(n_bits),
                storage_gpn: gpn,
                ..GsiConfig::gsi_opt()
            };
            let got = run(cfg, &data, &query);
            assert_eq!(got, oracle, "N={n_bits} GPN={gpn}");
        }
    }
}

#[test]
fn matrix_first_edge_heuristic_and_alloc() {
    let (data, query) = workload(5);
    let oracle = vf2::run(&data, &query, None).assignments;
    for first_edge_min_freq in [false, true] {
        for combined_alloc in [false, true] {
            let cfg = GsiConfig {
                first_edge_min_freq,
                combined_alloc,
                ..GsiConfig::gsi_opt()
            };
            let got = run(cfg, &data, &query);
            assert_eq!(
                got, oracle,
                "min_freq={first_edge_min_freq} combined={combined_alloc}"
            );
        }
    }
}

#[test]
fn lb_threshold_sweep_preserves_results() {
    let (data, query) = workload(6);
    let oracle = vf2::run(&data, &query, None).assignments;
    for (w1, w3) in [(2048, 64), (4096, 256), (6144, 320)] {
        let cfg = GsiConfig {
            load_balance: Some(LbParams { w1, w2: 1024, w3 }),
            ..GsiConfig::gsi_opt()
        };
        let got = run(cfg, &data, &query);
        assert_eq!(got, oracle, "w1={w1} w3={w3}");
    }
}
