//! Differential fuzz gate for adaptive mid-query re-planning: for every
//! fuzzed query, an adaptive run (threshold 1.0 — every join position is
//! examined against its estimate) must produce a match table **bit-identical**
//! (in canonical, query-vertex-indexed form) to the static plan of the same
//! planner AND to both static planners, across **both execution backends and
//! all four join-scheme cells** (including the mixed radix-promotion cell) —
//! with exactly reproducible device counters per arm, and counters identical
//! to the static run whenever the adaptive run kept the static order. A
//! re-plan that changed even one row would make every cardinality-feedback
//! refinement a correctness hazard.
//!
//! The gate also proves its own teeth: a deliberate off-by-one in the
//! suffix-splice linking columns (`QueryOptions::adaptive_splice_skew`)
//! must corrupt the matches of a re-planning case.
//!
//! `ADAPTIVE_FUZZ_CASES` scales the number of fuzzed queries (default 24).
//! In CI the variable must be set explicitly — a job that forgot to pin it
//! would otherwise gate merges on the tiny local smoke size without anyone
//! noticing, so failing early with a clear message wins.

use gsi::graph::generate::{barabasi_albert, erdos_renyi, LabelModel};
use gsi::graph::query_gen::random_walk_query;
use gsi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fuzz_cases() -> usize {
    match std::env::var("ADAPTIVE_FUZZ_CASES") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("ADAPTIVE_FUZZ_CASES must be an integer, got '{v}'")),
        Err(_) => {
            assert!(
                std::env::var_os("CI").is_none() && std::env::var_os("GITHUB_ACTIONS").is_none(),
                "ADAPTIVE_FUZZ_CASES is unset in CI: pin the fuzz case count explicitly \
                 (the local default of 24 is a smoke size, not a merge gate)"
            );
            24
        }
    }
}

fn test_engine(cfg: GsiConfig) -> GsiEngine {
    GsiEngine::with_gpu(cfg, Gpu::new(DeviceConfig::test_device()))
}

/// The (backend × scheme) configuration matrix every case runs under.
fn config_matrix() -> Vec<(String, GsiConfig)> {
    [
        ("serial", BackendKind::Serial),
        ("host-parallel", BackendKind::HostParallel),
    ]
    .into_iter()
    .flat_map(|(bname, backend)| {
        [
            ("prealloc", JoinScheme::PreallocCombine, None),
            ("two-step", JoinScheme::TwoStep, None),
            ("radix-hash", JoinScheme::RadixHash, None),
            ("prealloc+radix", JoinScheme::PreallocCombine, Some(1.0)),
        ]
        .into_iter()
        .map(move |(sname, scheme, radix_at)| {
            let cfg = GsiConfig {
                join_scheme: scheme,
                radix_join_threshold: radix_at,
                ..GsiConfig::gsi_opt()
            }
            .with_backend(backend, if backend == BackendKind::Serial { 0 } else { 3 });
            (format!("{bname}/{sname}"), cfg)
        })
    })
    .collect()
}

/// One run; returns (canonical matches, device delta, order, replans).
fn run_once(
    engine: &GsiEngine,
    data: &Graph,
    prepared: &gsi::engine::PreparedData,
    query: &Graph,
    planner: PlannerKind,
    adaptive: bool,
) -> (Vec<Vec<u32>>, gsi::sim::StatsSnapshot, Vec<u32>, u32) {
    let snap0 = engine.gpu().stats().snapshot();
    let out = engine
        .query_with_options(
            data,
            prepared,
            query,
            QueryOptions {
                planner: Some(planner),
                replan_qerror_threshold: if adaptive { Some(1.0) } else { None },
                ..QueryOptions::default()
            },
        )
        .expect("connected queries plan");
    let delta = engine.gpu().stats().snapshot() - snap0;
    assert!(out.plan.covers(query), "executed plan must cover");
    assert_eq!(
        out.explain.steps.len(),
        out.plan.order.len(),
        "explain reports every join position, spliced or not"
    );
    if !adaptive {
        assert_eq!(out.stats.replans, 0, "static arm must never re-plan");
    }
    if out.stats.replans > 0 {
        assert!(
            out.pre_replan_q_error.is_some(),
            "a re-planning run reports the abandoned plan's q-error"
        );
    }
    (
        out.matches.canonical(),
        delta,
        out.plan.order,
        out.stats.replans,
    )
}

/// Deterministic re-plan bait: a fork `a(0)–b(1)` with two branches that
/// share one edge label but have opposite typed densities — the greedy
/// label-frequency score picks the explosive branch first, so an adaptive
/// run over the greedy plan must splice mid-query.
fn skewed_fork() -> (Graph, Graph) {
    let mut b = GraphBuilder::new();
    let a: Vec<u32> = (0..2).map(|_| b.add_vertex(0)).collect();
    let bs: Vec<u32> = (0..60).map(|_| b.add_vertex(1)).collect();
    let xs: Vec<u32> = (0..3).map(|_| b.add_vertex(2)).collect();
    let ys: Vec<u32> = (0..8).map(|_| b.add_vertex(3)).collect();
    for (i, &vb) in bs.iter().enumerate() {
        b.add_edge(a[i % 2], vb, 0);
    }
    for &vb in &bs {
        for &vx in &xs {
            b.add_edge(vb, vx, 1);
        }
    }
    for (i, &vy) in ys.iter().enumerate() {
        b.add_edge(bs[i * 7], vy, 1);
    }
    let data = b.build();

    let mut qb = GraphBuilder::new();
    let qa = qb.add_vertex(0);
    let qbv = qb.add_vertex(1);
    let qx = qb.add_vertex(2);
    let qy = qb.add_vertex(3);
    qb.add_edge(qa, qbv, 0);
    qb.add_edge(qbv, qx, 1);
    qb.add_edge(qbv, qy, 1);
    (data, qb.build())
}

#[test]
fn adaptive_runs_match_static_plans_across_backends_and_schemes() {
    let mut rng = StdRng::seed_from_u64(0xADA9_7153);
    let fork = skewed_fork();
    let graphs: Vec<Graph> = vec![
        fork.0.clone(),
        barabasi_albert(220, 3, &LabelModel::zipf(4, 3, 0.9), &mut rng),
        erdos_renyi(180, 540, &LabelModel::uniform(3, 4), &mut rng),
        erdos_renyi(120, 600, &LabelModel::zipf(5, 2, 0.6), &mut rng),
    ];
    let cases = fuzz_cases();
    let mut checked = 0usize;
    let mut replanned = 0usize;
    let mut order_diverged = 0usize;

    for (gi, data) in graphs.iter().enumerate() {
        let engines: Vec<(String, GsiEngine)> = config_matrix()
            .into_iter()
            .map(|(name, cfg)| (name, test_engine(cfg)))
            .collect();

        for case in 0..cases.div_ceil(graphs.len()) {
            // The fork graph always replays its deterministic bait query;
            // the fuzzed graphs draw fresh random walks.
            let query = if gi == 0 {
                fork.1.clone()
            } else {
                let size = 3 + (case % 4);
                match random_walk_query(data, size, &mut rng) {
                    Some(q) => q,
                    None => continue,
                }
            };
            let mut reference: Option<Vec<Vec<u32>>> = None;
            for (name, engine) in &engines {
                let prepared = engine.prepare(data);
                for planner in [PlannerKind::Greedy, PlannerKind::CostBased] {
                    let (s_canon, s_dev, s_order, _) =
                        run_once(engine, data, &prepared, &query, planner, false);
                    let (a_canon, a_dev, a_order, a_replans) =
                        run_once(engine, data, &prepared, &query, planner, true);

                    // The differential gate itself.
                    assert_eq!(
                        s_canon, a_canon,
                        "graph {gi} case {case} [{name}/{planner}]: \
                         adaptive run changed the match table"
                    );
                    replanned += (a_replans > 0) as usize;
                    if a_order != s_order {
                        order_diverged += 1;
                        assert!(
                            a_replans > 0,
                            "order changed without a recorded re-plan [{name}/{planner}]"
                        );
                    } else {
                        // Same executed order ⇒ the device did exactly the
                        // same join work, transaction for transaction.
                        assert_eq!(
                            s_dev, a_dev,
                            "graph {gi} case {case} [{name}/{planner}]: \
                             unchanged order must charge identical counters"
                        );
                    }

                    // Determinism: an identical adaptive re-run replays the
                    // same splices and charges exactly the same counters.
                    let (a2, a2_dev, a2_order, a2_replans) =
                        run_once(engine, data, &prepared, &query, planner, true);
                    assert_eq!(a_canon, a2, "adaptive rerun diverged [{name}/{planner}]");
                    assert_eq!(
                        a_order, a2_order,
                        "adaptive order flapped [{name}/{planner}]"
                    );
                    assert_eq!(a_replans, a2_replans, "re-plan count flapped");
                    assert_eq!(
                        a_dev, a2_dev,
                        "adaptive counters non-deterministic [{name}/{planner}]"
                    );

                    // All arms and cells agree on the match set.
                    match &reference {
                        None => reference = Some(a_canon),
                        Some(expect) => assert_eq!(
                            &a_canon, expect,
                            "graph {gi} case {case} [{name}/{planner}]: cell disagrees"
                        ),
                    }
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 0, "fuzz loop must exercise at least one query");
    // Non-vacuity: the corpus must actually exercise mid-query re-planning
    // (the fork fixture guarantees it even at smoke sizes) and splice in a
    // different order somewhere — otherwise the gate compares a plan with
    // itself.
    assert!(
        replanned > 0,
        "no run re-planned across {checked} adaptive runs — gate is vacuous"
    );
    assert!(
        order_diverged > 0,
        "no adaptive run diverged from its static order across {checked} runs"
    );
}

/// Mutation check: the gate must have teeth. Forcing the hidden
/// `adaptive_splice_skew` fault — an off-by-one in the spliced suffix's
/// linking columns — on a case that re-plans must corrupt the match table;
/// if it did not, this differential battery could never catch a real
/// splicing bug.
#[test]
fn splice_off_by_one_mutation_is_caught_by_the_differential() {
    let (data, query) = skewed_fork();
    let engine = test_engine(GsiConfig::gsi_opt());
    let prepared = engine.prepare(&data);

    let truth = engine
        .query_with_options(
            &data,
            &prepared,
            &query,
            QueryOptions {
                planner: Some(PlannerKind::Greedy),
                ..QueryOptions::default()
            },
        )
        .expect("static greedy plans");
    let truth_canon = truth.matches.canonical();
    assert!(!truth_canon.is_empty(), "fixture must produce matches");

    let mutated = engine
        .query_with_options(
            &data,
            &prepared,
            &query,
            QueryOptions {
                planner: Some(PlannerKind::Greedy),
                replan_qerror_threshold: Some(1.0),
                adaptive_splice_skew: true,
                ..QueryOptions::default()
            },
        )
        .expect("mutated run still executes");
    assert!(
        mutated.stats.replans > 0,
        "the fixture must re-plan for the mutation to be reachable"
    );
    assert_ne!(
        mutated.matches.canonical(),
        truth_canon,
        "an off-by-one in suffix splicing must corrupt the match table — \
         otherwise the differential gate is toothless"
    );
}
